// Google-benchmark micro-benchmarks for the building blocks: wire codec,
// lease table, simulator event throughput, file store commits, and a full
// simulated lease round-trip. These put absolute numbers on the claim that
// lease bookkeeping is cheap relative to message costs.
//
// `bench_micro --json [path]` skips the google-benchmark suite and instead
// writes BENCH_CORE.json (default path: ./BENCH_CORE.json): scheduler
// events/sec, ns/event, cancel throughput, and serial-vs-parallel sweep
// wall-clock. That file is committed per machine-generation so the perf
// trajectory of the discrete-event core stays machine-readable across PRs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/shard_bench.h"
#include "bench/sweep_runner.h"
#include "src/core/lease_table.h"
#include "src/core/swarm_cluster.h"
#include "src/net/sim_network.h"
#include "src/core/sim_cluster.h"
#include "src/fs/file_store.h"
#include "src/metrics/mem_probe.h"
#include "src/proto/messages.h"
#include "src/sim/simulator.h"
#include "src/workload/v_config.h"

namespace leases {
namespace {

void BM_EncodeReadReply(benchmark::State& state) {
  ReadReply reply;
  reply.req = RequestId(42);
  reply.file = FileId(7);
  reply.version = 99;
  reply.lease = LeaseGrant{LeaseKey(7), Duration::Seconds(10)};
  reply.data.assign(static_cast<size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodePacket(Packet(reply)));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeReadReply)->Arg(64)->Arg(1024)->Arg(16384);

void BM_DecodeReadReply(benchmark::State& state) {
  ReadReply reply;
  reply.req = RequestId(42);
  reply.file = FileId(7);
  reply.data.assign(static_cast<size_t>(state.range(0)), 0xAB);
  std::vector<uint8_t> bytes = EncodePacket(Packet(reply));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecodePacket(bytes));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeReadReply)->Arg(64)->Arg(1024)->Arg(16384);

void BM_LeaseTableGrant(benchmark::State& state) {
  LeaseTable table;
  TimePoint now;
  uint64_t i = 0;
  for (auto _ : state) {
    LeaseKey key(i % 1000 + 1);
    NodeId node(static_cast<uint32_t>(i % 64 + 1));
    table.Grant(key, node, now + Duration::Seconds(10));
    ++i;
  }
}
BENCHMARK(BM_LeaseTableGrant);

void BM_LeaseTableActiveHolders(benchmark::State& state) {
  LeaseTable table;
  TimePoint now;
  for (uint32_t n = 1; n <= static_cast<uint32_t>(state.range(0)); ++n) {
    table.Grant(LeaseKey(1), NodeId(n), now + Duration::Seconds(10));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.ActiveHolders(LeaseKey(1), now));
  }
}
BENCHMARK(BM_LeaseTableActiveHolders)->Arg(1)->Arg(10)->Arg(100);

// Self-rescheduling chain functors. These are the allocation-free idiom the
// scheduler's inline-callable path is built for (every call site in src/
// passes a lambda straight to ScheduleAfter); going through std::function
// instead would benchmark std::function's heap-allocating copy constructor,
// not the scheduler.
struct ChainTick {
  Simulator* sim;
  int* remaining;
  void operator()() const {
    if (--*remaining > 0) {
      sim->ScheduleAfter(Duration::Micros(10), ChainTick{sim, remaining});
    }
  }
};

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    int remaining = 10000;
    sim.ScheduleAfter(Duration::Micros(10), ChainTick{&sim, &remaining});
    state.ResumeTiming();
    sim.RunUntilIdle();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventThroughput);

// Throughput with a deep pending queue: `range` self-rescheduling chains are
// in flight at once, which is what a large cluster's timer population looks
// like. This exercises heap sifts and (at 10 s periods) the timer wheel.
struct DeepTick {
  Simulator* sim;
  int* remaining;
  void operator()() const {
    if (--*remaining > 0) {
      sim->ScheduleAfter(Duration::Micros(10 + *remaining % 977),
                         DeepTick{sim, remaining});
    }
  }
};

void BM_SimulatorDeepQueue(benchmark::State& state) {
  const int kChains = static_cast<int>(state.range(0));
  const int kEventsPerChain = 1000;
  int64_t total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    int remaining = kChains * kEventsPerChain;
    for (int c = 0; c < kChains; ++c) {
      sim.ScheduleAfter(Duration::Micros(c + 1), DeepTick{&sim, &remaining});
    }
    state.ResumeTiming();
    sim.RunUntilIdle();
    total += kChains * kEventsPerChain;
  }
  state.SetItemsProcessed(total);
}
BENCHMARK(BM_SimulatorDeepQueue)->Arg(64)->Arg(1024);

// The lease-expiry pattern: schedule a far-future timer, cancel it before it
// fires (an extension rescheds the expiry), repeat. Exercises O(1) cancel
// and the timer wheel's park-without-heap-traffic property.
void BM_SimulatorScheduleCancel(benchmark::State& state) {
  Simulator sim;
  for (auto _ : state) {
    EventId id = sim.ScheduleAfter(Duration::Seconds(10), []() {});
    benchmark::DoNotOptimize(sim.Cancel(id));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorScheduleCancel);

void BM_FileStoreApply(benchmark::State& state) {
  FileStore store;
  FileId file = *store.CreatePath("/bench", FileClass::kNormal,
                                  std::vector<uint8_t>(256, 1));
  std::vector<uint8_t> data(256, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Apply(file, data, NodeId()));
  }
}
BENCHMARK(BM_FileStoreApply);

void BM_SimulatedLeaseRoundTrip(benchmark::State& state) {
  // Full protocol cost of one extension round-trip in virtual time,
  // measured in host CPU time: cache miss -> extension -> grant -> reply.
  ClusterOptions options = MakeVClusterOptions(Duration::Millis(1), 1);
  SimCluster cluster(options);
  FileId file =
      *cluster.store().CreatePath("/f", FileClass::kNormal, Bytes("x"));
  LEASES_CHECK(cluster.SyncRead(0, file).ok());
  for (auto _ : state) {
    cluster.RunFor(Duration::Millis(2));  // let the 1 ms lease lapse
    benchmark::DoNotOptimize(cluster.SyncRead(0, file));
  }
}
BENCHMARK(BM_SimulatedLeaseRoundTrip);

// --- BENCH_CORE.json ---

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Single-chain event churn: the same workload as BM_SimulatorEventThroughput
// (one self-rescheduling 10 us chain), scaled up. This is the headline
// events/sec figure, directly comparable across machine generations and
// against the seed implementation's bench_micro number.
double MeasureChainEventsPerSec(uint64_t* events_out) {
  const int kTotalEvents = 4'000'000;
  // Best of three: the measurement runs on shared machines, so a single rep
  // can eat a scheduling hiccup.
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {
    Simulator sim;
    int remaining = kTotalEvents;
    sim.ScheduleAfter(Duration::Micros(10), ChainTick{&sim, &remaining});
    auto start = std::chrono::steady_clock::now();
    sim.RunUntilIdle();
    double elapsed = SecondsSince(start);
    *events_out = sim.executed_events();
    double rate = static_cast<double>(sim.executed_events()) / elapsed;
    if (rate > best) {
      best = rate;
    }
  }
  return best;
}

// Mixed-horizon event churn: 1024 chains rescheduling at microsecond-to-
// second horizons, the shape the simulated cluster produces.
double MeasureMixedEventsPerSec(uint64_t* events_out) {
  const int kChains = 1024;
  const int kTotalEvents = 4'000'000;
  Simulator sim;
  int remaining = kTotalEvents;
  // Self-rescheduling POD functor: the allocation-free idiom real call sites
  // use. Horizons are spread across the heap (us..ms) and the wheel (s).
  struct MixedTick {
    Simulator* sim;
    int* remaining;
    void operator()() const {
      int r = --*remaining;
      if (r > 0) {
        int64_t us = 10 + (r % 7) * ((r % 13 == 0) ? 100'000 : 97);
        sim->ScheduleAfter(Duration::Micros(us), MixedTick{sim, remaining});
      }
    }
  };
  for (int c = 0; c < kChains; ++c) {
    sim.ScheduleAfter(Duration::Micros(c + 1), MixedTick{&sim, &remaining});
  }
  auto start = std::chrono::steady_clock::now();
  sim.RunUntilIdle();
  double elapsed = SecondsSince(start);
  *events_out = sim.executed_events();
  return static_cast<double>(sim.executed_events()) / elapsed;
}

double MeasureCancelOpsPerSec() {
  const int kOps = 2'000'000;
  Simulator sim;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) {
    EventId id = sim.ScheduleAfter(Duration::Seconds(10 + i % 50), []() {});
    sim.Cancel(id);
  }
  double elapsed = SecondsSince(start);
  return 2.0 * kOps / elapsed;  // schedule + cancel are two ops
}

uint64_t SweepSignature(const std::vector<WorkloadReport>& reports) {
  uint64_t sig = 0;
  for (const WorkloadReport& r : reports) {
    sig = sig * 1000003 + r.server_consistency_msgs + r.reads + r.writes;
  }
  return sig;
}

// A scaled-down A6-style sweep, run serially and through the thread pool.
// The signatures must match: parallelism must not change a single message.
//
// Points are sized so each runs long enough (hundreds of milliseconds) to
// amortize pool startup, and the pool takes the machine's real thread count
// (honoring LEASES_SWEEP_THREADS): on a single-core container the runner
// skips thread spin-up entirely and runs inline, so the "parallel" pass
// measures pool overhead honestly instead of forcing two threads to fight
// over one CPU.
void MeasureSweep(double* serial_s, double* parallel_s, size_t* threads,
                  size_t* points, bool* identical, bool* degraded) {
  const std::vector<size_t> counts = {5, 10, 20, 40};
  const Duration kMeasure = Duration::Seconds(12000);
  auto point = [&counts, kMeasure](size_t i) {
    return RunVPoisson(Duration::Seconds(10), 1, 600 + counts[i], kMeasure,
                       counts[i]);
  };
  SweepRunner serial(1);
  SweepRunner pool(SweepRunner::DefaultThreads());

  // Untimed warmup over the full point set, so neither timed pass pays
  // first-touch costs (the 40-client point dominates the arena shape) and
  // both run against the same steady-state allocator.
  (void)serial.Map<WorkloadReport>(counts.size(), point);

  // ABBA ordering (serial, parallel, parallel, serial), repeated: each mode
  // occupies early and late positions equally, so linear clock/thermal drift
  // cancels out of the means instead of biasing whichever pass ran second.
  std::vector<WorkloadReport> serial_reports;
  std::vector<WorkloadReport> pool_reports;
  double serial_sum = 0.0;
  double parallel_sum = 0.0;
  constexpr int kRounds = 2;
  for (int round = 0; round < kRounds; ++round) {
    auto start = std::chrono::steady_clock::now();
    serial_reports = serial.Map<WorkloadReport>(counts.size(), point);
    serial_sum += SecondsSince(start);

    for (int rep = 0; rep < 2; ++rep) {
      start = std::chrono::steady_clock::now();
      pool_reports = pool.Map<WorkloadReport>(counts.size(), point);
      parallel_sum += SecondsSince(start);
    }

    start = std::chrono::steady_clock::now();
    serial_reports = serial.Map<WorkloadReport>(counts.size(), point);
    serial_sum += SecondsSince(start);
  }
  *serial_s = serial_sum / (2 * kRounds);
  *parallel_s = parallel_sum / (2 * kRounds);
  *threads = pool.threads();
  *points = counts.size();
  *identical = SweepSignature(serial_reports) == SweepSignature(pool_reports);
  // A one-thread pool cannot measure parallelism: the "speedup" it records
  // is pool overhead (historically reported as a meaningless 1.01x). Flag
  // it loudly instead of letting the number masquerade as a scaling result.
  *degraded = pool.threads() <= 1;
  if (*degraded) {
    std::fprintf(stderr,
                 "bench_micro: sweep DEGRADED -- pool has 1 thread "
                 "(hardware_concurrency or LEASES_SWEEP_THREADS); the "
                 "recorded speedup is overhead, not parallel scaling\n");
  }
}

// --- Protocol message-path metrics ---

// A node that pumps messages back and forth: on each arrival it produces a
// fresh reply packet while replies remain. In force-wire mode arrivals come
// through HandlePacket and are decoded (the old world, end to end); on the
// typed path the packet arrives without any codec work.
class PumpNode : public PacketHandler {
 public:
  static Packet MakeMessage() {
    ReadReply m;
    m.req = RequestId(1);
    m.file = FileId(7);
    m.version = 9;
    m.lease = LeaseGrant{LeaseKey(7), Duration::Seconds(10)};
    m.data.assign(512, 0xAB);
    return m;
  }

  void HandlePacket(NodeId from, MessageClass /*cls*/,
                    std::span<const uint8_t> bytes) override {
    std::optional<Packet> packet = DecodePacket(bytes);
    if (packet.has_value()) {
      benchmark::DoNotOptimize(*packet);
      OnArrival(from);
    }
  }

  void HandleTyped(NodeId from, MessageClass /*cls*/,
                   const Packet& packet) override {
    benchmark::DoNotOptimize(packet);
    OnArrival(from);
  }

  void OnArrival(NodeId from) {
    ++received;
    if (remaining > 0) {
      --remaining;
      transport->Send(from, MessageClass::kData, MakeMessage());
    }
  }

  Transport* transport = nullptr;
  int remaining = 0;
  uint64_t received = 0;
};

// Raw message-path throughput through SimNetwork: two nodes exchanging
// 512-byte ReadReplies. The typed/wire ratio is the serialization tax the
// fast path removes from every simulated message.
double MeasurePumpMsgsPerSec(bool force_wire, uint64_t* messages) {
  const int kMessages = 200'000;
  double best = 0;
  for (int rep = 0; rep < 2; ++rep) {
    Simulator sim;
    SimNetwork net(&sim, NetworkParams{});
    net.set_force_wire(force_wire);
    PumpNode a;
    PumpNode b;
    a.transport = net.AttachNode(NodeId(1), &a);
    b.transport = net.AttachNode(NodeId(2), &b);
    a.remaining = kMessages / 2;
    b.remaining = kMessages / 2;
    auto start = std::chrono::steady_clock::now();
    a.transport->Send(NodeId(2), MessageClass::kData, PumpNode::MakeMessage());
    sim.RunUntilIdle();
    double elapsed = SecondsSince(start);
    *messages = a.received + b.received;
    double rate = static_cast<double>(*messages) / elapsed;
    if (rate > best) {
      best = rate;
    }
  }
  return best;
}

// End-to-end protocol throughput: the standard 10-client V cluster under
// the Section 3.1 Poisson workload, measured as simulated lease operations
// (reads + writes) completed per host second.
double MeasureLeaseOpsPerSec(bool force_wire, uint64_t* ops) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 10, 7);
  SimCluster cluster(options);
  cluster.network().set_force_wire(force_wire);
  PoissonOptions poisson;
  poisson.sharing = 5;
  poisson.seed = 7;
  poisson.measure = Duration::Seconds(4000);
  PoissonDriver driver(&cluster, poisson);
  driver.Setup();
  auto start = std::chrono::steady_clock::now();
  WorkloadReport report = driver.Run();
  double elapsed = SecondsSince(start);
  *ops = report.reads + report.writes;
  return static_cast<double>(*ops) / elapsed;
}

// Measured steady-state memory of one simulated swarm client: peak-RSS
// delta across building and exercising a 200k-member installed-lease swarm,
// divided by the member count. Must run before any other measurement so the
// process high-water mark is attributable to the swarm, not a sweep.
size_t MeasureBytesPerClient(uint32_t* clients_out) {
  const uint32_t kClients = 200'000;
  *clients_out = kClients;
  size_t before = PeakRssBytes();
  if (before == 0) {
    return 0;  // probe unavailable on this platform
  }
  SwarmClusterOptions options;
  options.num_members = kClients;
  options.num_servers = 2;
  options.net.proc_time = Duration::Micros(10);
  options.swarm.read_period = Duration::Seconds(10);
  SwarmCluster cluster(options);
  // Long enough for every member to fetch, hold a lease and be renewed by
  // multicast: the steady state the budget is defined over.
  cluster.RunFor(Duration::Seconds(30));
  size_t after = PeakRssBytes();
  return after > before ? (after - before) / kClients : 0;
}

int WriteBenchCore(const char* path) {
  uint32_t mem_clients = 0;
  size_t bytes_per_client = MeasureBytesPerClient(&mem_clients);

  uint64_t events = 0;
  uint64_t mixed_events = 0;
  double events_per_sec = MeasureChainEventsPerSec(&events);
  double mixed_per_sec = MeasureMixedEventsPerSec(&mixed_events);
  double cancel_ops = MeasureCancelOpsPerSec();

  uint64_t pump_messages = 0;
  double pump_wire = MeasurePumpMsgsPerSec(/*force_wire=*/true,
                                           &pump_messages);
  double pump_typed = MeasurePumpMsgsPerSec(/*force_wire=*/false,
                                            &pump_messages);
  uint64_t lease_ops = 0;
  double ops_wire = MeasureLeaseOpsPerSec(/*force_wire=*/true, &lease_ops);
  double ops_typed = MeasureLeaseOpsPerSec(/*force_wire=*/false, &lease_ops);

  double serial_s = 0;
  double parallel_s = 0;
  size_t threads = 0;
  size_t points = 0;
  bool identical = false;
  bool sweep_degraded = false;
  MeasureSweep(&serial_s, &parallel_s, &threads, &points, &identical,
               &sweep_degraded);
  long requested_threads = 0;
  if (const char* env = std::getenv("LEASES_SWEEP_THREADS")) {
    requested_threads = std::strtol(env, nullptr, 10);
  }

  // Shard-scaling row: the sharded grant plane's typed lease-op throughput
  // at 1 and 8 shards (bench_shard runs the full sweep). Degraded on
  // machines with fewer cores than shards, same semantics as the sweep.
  size_t hw = std::thread::hardware_concurrency();
  constexpr size_t kShardMax = 8;
  ShardBenchResult shard1 = RunShardBenchBest(1, 256, 100, /*reps=*/2);
  ShardBenchResult shard8 = RunShardBenchBest(kShardMax, 256, 100,
                                              /*reps=*/2);
  bool shard_degraded = hw < kShardMax;

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"schema\": 4,\n"
               "  \"memory\": {\n"
               "    \"swarm_clients\": %u,\n"
               "    \"bytes_per_client\": %zu\n"
               "  },\n"
               "  \"scheduler\": {\n"
               "    \"events\": %llu,\n"
               "    \"events_per_sec\": %.0f,\n"
               "    \"ns_per_event\": %.2f,\n"
               "    \"mixed_horizon_events_per_sec\": %.0f,\n"
               "    \"schedule_cancel_ops_per_sec\": %.0f\n"
               "  },\n"
               "  \"protocol\": {\n"
               "    \"pump_messages\": %llu,\n"
               "    \"pump_payload_bytes\": 512,\n"
               "    \"pump_wire_msgs_per_sec\": %.0f,\n"
               "    \"pump_typed_msgs_per_sec\": %.0f,\n"
               "    \"pump_typed_speedup\": %.2f,\n"
               "    \"cluster_clients\": 10,\n"
               "    \"cluster_lease_ops\": %llu,\n"
               "    \"lease_ops_wire_per_sec\": %.0f,\n"
               "    \"lease_ops_typed_per_sec\": %.0f,\n"
               "    \"lease_ops_typed_speedup\": %.2f\n"
               "  },\n"
               "  \"sweep\": {\n"
               "    \"points\": %zu,\n"
               "    \"threads\": %zu,\n"
               "    \"requested_threads\": %ld,\n"
               "    \"serial_wall_s\": %.3f,\n"
               "    \"parallel_wall_s\": %.3f,\n"
               "    \"speedup\": %.2f,\n"
               "    \"results_identical\": %s,\n"
               "    \"degraded\": %s\n"
               "  },\n"
               "  \"shard_scaling\": {\n"
               "    \"hw_threads\": %zu,\n"
               "    \"shards\": %zu,\n"
               "    \"ops_per_sec_1shard\": %.0f,\n"
               "    \"ops_per_sec_8shard\": %.0f,\n"
               "    \"speedup\": %.2f,\n"
               "    \"degraded\": %s\n"
               "  }\n"
               "}\n",
               mem_clients, bytes_per_client,
               static_cast<unsigned long long>(events), events_per_sec,
               1e9 / events_per_sec, mixed_per_sec, cancel_ops,
               static_cast<unsigned long long>(pump_messages), pump_wire,
               pump_typed, pump_typed / pump_wire,
               static_cast<unsigned long long>(lease_ops), ops_wire,
               ops_typed, ops_typed / ops_wire, points, threads,
               requested_threads, serial_s, parallel_s,
               serial_s / parallel_s, identical ? "true" : "false",
               sweep_degraded ? "true" : "false", hw, kShardMax,
               shard1.ops_per_sec, shard8.ops_per_sec,
               shard1.ops_per_sec > 0
                   ? shard8.ops_per_sec / shard1.ops_per_sec
                   : 0,
               shard_degraded ? "true" : "false");
  std::fclose(f);
  std::printf("  memory: %zu bytes/client over %u swarm clients\n",
              bytes_per_client, mem_clients);
  std::printf("wrote %s: %.1fM events/s (%.1f ns/event), %.1fM mixed-horizon "
              "events/s, %.1fM sched+cancel ops/s\n"
              "  protocol: pump %.2fM -> %.2fM msgs/s (%.2fx typed), "
              "cluster %.0f -> %.0f lease ops/s (%.2fx typed)\n"
              "  sweep %.2fs -> %.2fs (%zu threads, identical=%s%s)\n"
              "  shards: %.2fM -> %.2fM ops/s at 1 -> %zu shards "
              "(%.2fx%s)\n",
              path, events_per_sec / 1e6, 1e9 / events_per_sec,
              mixed_per_sec / 1e6, cancel_ops / 1e6, pump_wire / 1e6,
              pump_typed / 1e6, pump_typed / pump_wire, ops_wire, ops_typed,
              ops_typed / ops_wire, serial_s, parallel_s, threads,
              identical ? "true" : "false",
              sweep_degraded ? ", DEGRADED" : "", shard1.ops_per_sec / 1e6,
              shard8.ops_per_sec / 1e6, kShardMax,
              shard1.ops_per_sec > 0
                  ? shard8.ops_per_sec / shard1.ops_per_sec
                  : 0,
              shard_degraded ? ", DEGRADED" : "");
  return identical ? 0 : 2;
}

}  // namespace
}  // namespace leases

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      const char* path =
          (i + 1 < argc && argv[i + 1][0] != '-') ? argv[i + 1]
                                                  : "BENCH_CORE.json";
      return leases::WriteBenchCore(path);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
