// Google-benchmark micro-benchmarks for the building blocks: wire codec,
// lease table, simulator event throughput, file store commits, and a full
// simulated lease round-trip. These put absolute numbers on the claim that
// lease bookkeeping is cheap relative to message costs.
//
// `bench_micro --json [path]` skips the google-benchmark suite and instead
// writes BENCH_CORE.json (default path: ./BENCH_CORE.json): scheduler
// events/sec, ns/event, cancel throughput, and serial-vs-parallel sweep
// wall-clock. That file is committed per machine-generation so the perf
// trajectory of the discrete-event core stays machine-readable across PRs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/sweep_runner.h"
#include "src/core/lease_table.h"
#include "src/core/sim_cluster.h"
#include "src/fs/file_store.h"
#include "src/proto/messages.h"
#include "src/sim/simulator.h"
#include "src/workload/v_config.h"

namespace leases {
namespace {

void BM_EncodeReadReply(benchmark::State& state) {
  ReadReply reply;
  reply.req = RequestId(42);
  reply.file = FileId(7);
  reply.version = 99;
  reply.lease = LeaseGrant{LeaseKey(7), Duration::Seconds(10)};
  reply.data.assign(static_cast<size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodePacket(Packet(reply)));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeReadReply)->Arg(64)->Arg(1024)->Arg(16384);

void BM_DecodeReadReply(benchmark::State& state) {
  ReadReply reply;
  reply.req = RequestId(42);
  reply.file = FileId(7);
  reply.data.assign(static_cast<size_t>(state.range(0)), 0xAB);
  std::vector<uint8_t> bytes = EncodePacket(Packet(reply));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecodePacket(bytes));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeReadReply)->Arg(64)->Arg(1024)->Arg(16384);

void BM_LeaseTableGrant(benchmark::State& state) {
  LeaseTable table;
  TimePoint now;
  uint64_t i = 0;
  for (auto _ : state) {
    LeaseKey key(i % 1000 + 1);
    NodeId node(static_cast<uint32_t>(i % 64 + 1));
    table.Grant(key, node, now + Duration::Seconds(10));
    ++i;
  }
}
BENCHMARK(BM_LeaseTableGrant);

void BM_LeaseTableActiveHolders(benchmark::State& state) {
  LeaseTable table;
  TimePoint now;
  for (uint32_t n = 1; n <= static_cast<uint32_t>(state.range(0)); ++n) {
    table.Grant(LeaseKey(1), NodeId(n), now + Duration::Seconds(10));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.ActiveHolders(LeaseKey(1), now));
  }
}
BENCHMARK(BM_LeaseTableActiveHolders)->Arg(1)->Arg(10)->Arg(100);

// Self-rescheduling chain functors. These are the allocation-free idiom the
// scheduler's inline-callable path is built for (every call site in src/
// passes a lambda straight to ScheduleAfter); going through std::function
// instead would benchmark std::function's heap-allocating copy constructor,
// not the scheduler.
struct ChainTick {
  Simulator* sim;
  int* remaining;
  void operator()() const {
    if (--*remaining > 0) {
      sim->ScheduleAfter(Duration::Micros(10), ChainTick{sim, remaining});
    }
  }
};

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    int remaining = 10000;
    sim.ScheduleAfter(Duration::Micros(10), ChainTick{&sim, &remaining});
    state.ResumeTiming();
    sim.RunUntilIdle();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventThroughput);

// Throughput with a deep pending queue: `range` self-rescheduling chains are
// in flight at once, which is what a large cluster's timer population looks
// like. This exercises heap sifts and (at 10 s periods) the timer wheel.
struct DeepTick {
  Simulator* sim;
  int* remaining;
  void operator()() const {
    if (--*remaining > 0) {
      sim->ScheduleAfter(Duration::Micros(10 + *remaining % 977),
                         DeepTick{sim, remaining});
    }
  }
};

void BM_SimulatorDeepQueue(benchmark::State& state) {
  const int kChains = static_cast<int>(state.range(0));
  const int kEventsPerChain = 1000;
  int64_t total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    int remaining = kChains * kEventsPerChain;
    for (int c = 0; c < kChains; ++c) {
      sim.ScheduleAfter(Duration::Micros(c + 1), DeepTick{&sim, &remaining});
    }
    state.ResumeTiming();
    sim.RunUntilIdle();
    total += kChains * kEventsPerChain;
  }
  state.SetItemsProcessed(total);
}
BENCHMARK(BM_SimulatorDeepQueue)->Arg(64)->Arg(1024);

// The lease-expiry pattern: schedule a far-future timer, cancel it before it
// fires (an extension rescheds the expiry), repeat. Exercises O(1) cancel
// and the timer wheel's park-without-heap-traffic property.
void BM_SimulatorScheduleCancel(benchmark::State& state) {
  Simulator sim;
  for (auto _ : state) {
    EventId id = sim.ScheduleAfter(Duration::Seconds(10), []() {});
    benchmark::DoNotOptimize(sim.Cancel(id));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorScheduleCancel);

void BM_FileStoreApply(benchmark::State& state) {
  FileStore store;
  FileId file = *store.CreatePath("/bench", FileClass::kNormal,
                                  std::vector<uint8_t>(256, 1));
  std::vector<uint8_t> data(256, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Apply(file, data, NodeId()));
  }
}
BENCHMARK(BM_FileStoreApply);

void BM_SimulatedLeaseRoundTrip(benchmark::State& state) {
  // Full protocol cost of one extension round-trip in virtual time,
  // measured in host CPU time: cache miss -> extension -> grant -> reply.
  ClusterOptions options = MakeVClusterOptions(Duration::Millis(1), 1);
  SimCluster cluster(options);
  FileId file =
      *cluster.store().CreatePath("/f", FileClass::kNormal, Bytes("x"));
  LEASES_CHECK(cluster.SyncRead(0, file).ok());
  for (auto _ : state) {
    cluster.RunFor(Duration::Millis(2));  // let the 1 ms lease lapse
    benchmark::DoNotOptimize(cluster.SyncRead(0, file));
  }
}
BENCHMARK(BM_SimulatedLeaseRoundTrip);

// --- BENCH_CORE.json ---

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Single-chain event churn: the same workload as BM_SimulatorEventThroughput
// (one self-rescheduling 10 us chain), scaled up. This is the headline
// events/sec figure, directly comparable across machine generations and
// against the seed implementation's bench_micro number.
double MeasureChainEventsPerSec(uint64_t* events_out) {
  const int kTotalEvents = 4'000'000;
  // Best of three: the measurement runs on shared machines, so a single rep
  // can eat a scheduling hiccup.
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {
    Simulator sim;
    int remaining = kTotalEvents;
    sim.ScheduleAfter(Duration::Micros(10), ChainTick{&sim, &remaining});
    auto start = std::chrono::steady_clock::now();
    sim.RunUntilIdle();
    double elapsed = SecondsSince(start);
    *events_out = sim.executed_events();
    double rate = static_cast<double>(sim.executed_events()) / elapsed;
    if (rate > best) {
      best = rate;
    }
  }
  return best;
}

// Mixed-horizon event churn: 1024 chains rescheduling at microsecond-to-
// second horizons, the shape the simulated cluster produces.
double MeasureMixedEventsPerSec(uint64_t* events_out) {
  const int kChains = 1024;
  const int kTotalEvents = 4'000'000;
  Simulator sim;
  int remaining = kTotalEvents;
  // Self-rescheduling POD functor: the allocation-free idiom real call sites
  // use. Horizons are spread across the heap (us..ms) and the wheel (s).
  struct MixedTick {
    Simulator* sim;
    int* remaining;
    void operator()() const {
      int r = --*remaining;
      if (r > 0) {
        int64_t us = 10 + (r % 7) * ((r % 13 == 0) ? 100'000 : 97);
        sim->ScheduleAfter(Duration::Micros(us), MixedTick{sim, remaining});
      }
    }
  };
  for (int c = 0; c < kChains; ++c) {
    sim.ScheduleAfter(Duration::Micros(c + 1), MixedTick{&sim, &remaining});
  }
  auto start = std::chrono::steady_clock::now();
  sim.RunUntilIdle();
  double elapsed = SecondsSince(start);
  *events_out = sim.executed_events();
  return static_cast<double>(sim.executed_events()) / elapsed;
}

double MeasureCancelOpsPerSec() {
  const int kOps = 2'000'000;
  Simulator sim;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) {
    EventId id = sim.ScheduleAfter(Duration::Seconds(10 + i % 50), []() {});
    sim.Cancel(id);
  }
  double elapsed = SecondsSince(start);
  return 2.0 * kOps / elapsed;  // schedule + cancel are two ops
}

uint64_t SweepSignature(const std::vector<WorkloadReport>& reports) {
  uint64_t sig = 0;
  for (const WorkloadReport& r : reports) {
    sig = sig * 1000003 + r.server_consistency_msgs + r.reads + r.writes;
  }
  return sig;
}

// A scaled-down A6-style sweep, run serially and through the thread pool.
// The signatures must match: parallelism must not change a single message.
void MeasureSweep(double* serial_s, double* parallel_s, size_t* threads,
                  size_t* points, bool* identical) {
  const std::vector<size_t> counts = {5, 10, 20, 40};
  auto point = [&counts](size_t i) {
    return RunVPoisson(Duration::Seconds(10), 1, 600 + counts[i],
                       Duration::Seconds(2000), counts[i]);
  };
  SweepRunner serial(1);
  auto start = std::chrono::steady_clock::now();
  std::vector<WorkloadReport> serial_reports =
      serial.Map<WorkloadReport>(counts.size(), point);
  *serial_s = SecondsSince(start);

  // At least two workers so the pool path (and its cross-thread determinism)
  // is exercised even on a single-core container.
  SweepRunner pool(std::max<size_t>(2, SweepRunner::DefaultThreads()));
  start = std::chrono::steady_clock::now();
  std::vector<WorkloadReport> pool_reports =
      pool.Map<WorkloadReport>(counts.size(), point);
  *parallel_s = SecondsSince(start);
  *threads = pool.threads();
  *points = counts.size();
  *identical = SweepSignature(serial_reports) == SweepSignature(pool_reports);
}

int WriteBenchCore(const char* path) {
  uint64_t events = 0;
  uint64_t mixed_events = 0;
  double events_per_sec = MeasureChainEventsPerSec(&events);
  double mixed_per_sec = MeasureMixedEventsPerSec(&mixed_events);
  double cancel_ops = MeasureCancelOpsPerSec();
  double serial_s = 0;
  double parallel_s = 0;
  size_t threads = 0;
  size_t points = 0;
  bool identical = false;
  MeasureSweep(&serial_s, &parallel_s, &threads, &points, &identical);

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"schema\": 1,\n"
               "  \"scheduler\": {\n"
               "    \"events\": %llu,\n"
               "    \"events_per_sec\": %.0f,\n"
               "    \"ns_per_event\": %.2f,\n"
               "    \"mixed_horizon_events_per_sec\": %.0f,\n"
               "    \"schedule_cancel_ops_per_sec\": %.0f\n"
               "  },\n"
               "  \"sweep\": {\n"
               "    \"points\": %zu,\n"
               "    \"threads\": %zu,\n"
               "    \"serial_wall_s\": %.3f,\n"
               "    \"parallel_wall_s\": %.3f,\n"
               "    \"speedup\": %.2f,\n"
               "    \"results_identical\": %s\n"
               "  }\n"
               "}\n",
               static_cast<unsigned long long>(events), events_per_sec,
               1e9 / events_per_sec, mixed_per_sec, cancel_ops, points,
               threads, serial_s, parallel_s, serial_s / parallel_s,
               identical ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s: %.1fM events/s (%.1f ns/event), %.1fM mixed-horizon "
              "events/s, %.1fM sched+cancel ops/s, sweep %.2fs -> %.2fs "
              "(%zu threads, identical=%s)\n",
              path, events_per_sec / 1e6, 1e9 / events_per_sec,
              mixed_per_sec / 1e6, cancel_ops / 1e6, serial_s, parallel_s,
              threads, identical ? "true" : "false");
  return identical ? 0 : 2;
}

}  // namespace
}  // namespace leases

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      const char* path =
          (i + 1 < argc && argv[i + 1][0] != '-') ? argv[i + 1]
                                                  : "BENCH_CORE.json";
      return leases::WriteBenchCore(path);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
