#include "bench/sweep_runner.h"

#include <atomic>
#include <cstdlib>
#include <thread>

namespace leases {

SweepRunner::SweepRunner(size_t threads)
    : threads_(threads == 0 ? DefaultThreads() : threads) {}

size_t SweepRunner::DefaultThreads() {
  if (const char* env = std::getenv("LEASES_SWEEP_THREADS")) {
    long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) {
      return static_cast<size_t>(parsed);
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void SweepRunner::RunIndexed(size_t n,
                             const std::function<void(size_t)>& body) const {
  if (n == 0) {
    return;
  }
  // Pool spin-up is pure overhead when there is nothing to overlap: a
  // single point, a single configured thread (LEASES_SWEEP_THREADS=1), or
  // a single-core machine all run inline on the calling thread, with no
  // threads created at all.
  size_t workers = threads_ < n ? threads_ : n;
  if (n <= 1 || workers <= 1) {
    for (size_t i = 0; i < n; ++i) {
      body(i);
    }
    return;
  }
  // Work-stealing by atomic counter: sweep points vary wildly in cost (a
  // zero-term point simulates far more messages than a 30 s-term point), so
  // static striping would leave workers idle.
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&next, &body, n]() {
      while (true) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) {
          return;
        }
        body(i);
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }
}

}  // namespace leases
