// Ablation A2 (Section 3.1, footnotes 6-7): multicast vs unicast write
// approval.
//
// With multicast, obtaining approval of a shared write costs one multicast
// plus S-1 replies = S messages, and the lease benefit factor is
// alpha = 2R/(S*W). With unicast it costs 2(S-1) messages and
// alpha = R/((S-1)*W). The bench sweeps the sharing degree and reports the
// analytic and measured approval traffic and write delay for both modes.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/table.h"

namespace leases {
namespace {

struct ApprovalRun {
  double consistency_per_sec;
  double mean_write_delay_ms;
};

ApprovalRun RunMode(size_t sharing, bool multicast, uint64_t seed) {
  ClusterOptions options =
      MakeVClusterOptions(Duration::Seconds(10), /*num_clients=*/40, seed);
  options.server.multicast_approvals = multicast;
  SimCluster cluster(options);
  PoissonOptions poisson;
  poisson.sharing = sharing;
  // Heavier write mix than the V default so approval traffic dominates.
  poisson.read_rate = 2.0;
  poisson.write_rate = 0.2;
  poisson.seed = seed;
  poisson.measure = Duration::Seconds(1200);
  PoissonDriver driver(&cluster, poisson);
  driver.Setup();
  WorkloadReport report = driver.Run();
  LEASES_CHECK(report.oracle_violations == 0);
  return ApprovalRun{report.ConsistencyMsgsPerSec(),
                     report.write_delay.Mean() * 1e3};
}

void Run() {
  PrintHeader("Ablation A2: multicast vs unicast approvals");
  std::printf("40 clients, R=2/s, W=0.2/s per client, term 10 s.\n"
              "model approval msgs per shared write: multicast S, unicast "
              "2(S-1).\n\n");

  SeriesTable table({"S", "alpha_mcast", "alpha_ucast", "mcast_msgs_s",
                     "ucast_msgs_s", "mcast_wdelay_ms", "ucast_wdelay_ms"});
  for (size_t s : {2, 5, 10, 20, 40}) {
    SystemParams params = SystemParams::VSystem(static_cast<double>(s));
    params.reads_per_sec = 2.0;
    params.writes_per_sec = 0.2;
    LeaseModel mcast_model(params);
    params.multicast_approvals = false;
    LeaseModel ucast_model(params);

    ApprovalRun mcast = RunMode(s, true, 900 + s);
    ApprovalRun ucast = RunMode(s, false, 950 + s);
    table.AddRow({static_cast<double>(s), mcast_model.Alpha(),
                  ucast_model.Alpha(), mcast.consistency_per_sec,
                  ucast.consistency_per_sec, mcast.mean_write_delay_ms,
                  ucast.mean_write_delay_ms});
  }
  table.Print(stdout, 4);
  std::printf(
      "\npaper: multicast halves approval traffic at high sharing (S vs\n"
      "2(S-1) messages) and keeps the benefit factor alpha above the\n"
      "break-even point for larger S.\n");
}

}  // namespace
}  // namespace leases

int main() {
  leases::Run();
  return 0;
}
