// Proves the typed fast path's zero-allocation claim: once the message
// pool and scheduler have warmed up, pumping messages through SimNetwork
// performs no heap allocation at all -- counted by replacing global
// operator new/delete.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "src/net/sim_network.h"
#include "src/sim/simulator.h"

namespace {

std::atomic<uint64_t> g_allocs{0};

}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t n) { return ::operator new(n); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace leases {
namespace {

// Replies Pong to every Ping; re-serves Ping while rounds remain. Keeps no
// per-message state, so the only possible allocations are the network's.
class PingPonger : public PacketHandler {
 public:
  void HandlePacket(NodeId, MessageClass,
                    std::span<const uint8_t>) override {
    ADD_FAILURE() << "typed path must not deliver bytes";
  }

  void HandleTyped(NodeId from, MessageClass cls,
                   const Packet& packet) override {
    (void)cls;
    ++handled;
    if (std::get_if<Ping>(&packet) != nullptr) {
      transport->Send(from, MessageClass::kControl, Packet(Pong{RequestId(1)}));
    } else if (remaining > 0) {
      --remaining;
      transport->Send(from, MessageClass::kControl, Packet(Ping{RequestId(1)}));
    }
  }

  Transport* transport = nullptr;
  int remaining = 0;
  uint64_t handled = 0;
};

TEST(FastPathAllocTest, SteadyStateMessagePumpDoesNotAllocate) {
  Simulator sim;
  SimNetwork net(&sim, NetworkParams{});
  net.set_codec_conformance(false);  // conformance mode allocates by design
  PingPonger a;
  PingPonger b;
  a.transport = net.AttachNode(NodeId(1), &a);
  b.transport = net.AttachNode(NodeId(2), &b);

  // Warm up: grows the typed-message pool, the scheduler slot table and
  // every vector capacity involved.
  a.remaining = 200;
  a.transport->Send(NodeId(2), MessageClass::kControl,
                    Packet(Ping{RequestId(1)}));
  sim.RunUntilIdle();
  ASSERT_GT(a.handled, 0u);
  ASSERT_GT(b.handled, 0u);

  // Measure: the same traffic again must be allocation-free end to end
  // (send, wire event, receive event, handler dispatch, pool recycling).
  a.remaining = 200;
  uint64_t before = g_allocs.load(std::memory_order_relaxed);
  a.transport->Send(NodeId(2), MessageClass::kControl,
                    Packet(Ping{RequestId(1)}));
  sim.RunUntilIdle();
  uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "typed fast path allocated";
  EXPECT_GE(b.handled, 400u);
}

TEST(FastPathAllocTest, TypedMulticastSteadyStateDoesNotAllocate) {
  Simulator sim;
  SimNetwork net(&sim, NetworkParams{});
  PingPonger sender;
  PingPonger r1;
  PingPonger r2;
  PingPonger r3;
  sender.transport = net.AttachNode(NodeId(1), &sender);
  r1.transport = net.AttachNode(NodeId(2), &r1);
  r2.transport = net.AttachNode(NodeId(3), &r2);
  r3.transport = net.AttachNode(NodeId(4), &r3);
  NodeId dst[3] = {NodeId(2), NodeId(3), NodeId(4)};

  for (int i = 0; i < 50; ++i) {  // warm up
    sender.transport->Multicast(dst, MessageClass::kControl,
                                Packet(Pong{RequestId(1)}));
  }
  sim.RunUntilIdle();

  uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 50; ++i) {
    sender.transport->Multicast(dst, MessageClass::kControl,
                                Packet(Pong{RequestId(1)}));
  }
  sim.RunUntilIdle();
  uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "typed multicast allocated";
  EXPECT_EQ(r1.handled, 100u);
  EXPECT_EQ(r3.handled, 100u);
}

}  // namespace
}  // namespace leases
