// Unit tests for the real-time event loop, UDP transport and the
// fault-injection decorator over the real backend.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/net/faulty_transport.h"
#include "src/runtime/event_loop.h"
#include "src/runtime/udp_transport.h"

namespace leases {
namespace {

TEST(EventLoopTest, PostedTasksRunInOrder) {
  EventLoop loop;
  std::vector<int> order;
  std::atomic<bool> done{false};
  loop.Post([&]() { order.push_back(1); });
  loop.Post([&]() { order.push_back(2); });
  loop.Post([&]() {
    order.push_back(3);
    done = true;
  });
  while (!done) {
    std::this_thread::yield();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoopTest, RunSyncWaitsForCompletion) {
  EventLoop loop;
  int value = 0;
  loop.RunSync([&]() { value = 42; });
  EXPECT_EQ(value, 42);  // no race: RunSync returns after execution
  EXPECT_FALSE(loop.InLoopThread());
  bool in_loop = false;
  loop.RunSync([&]() { in_loop = loop.InLoopThread(); });
  EXPECT_TRUE(in_loop);
}

TEST(EventLoopTest, TimerFiresApproximatelyOnTime) {
  EventLoop loop;
  std::atomic<bool> fired{false};
  auto start = std::chrono::steady_clock::now();
  std::atomic<int64_t> elapsed_ms{0};
  loop.ScheduleAfter(Duration::Millis(50), [&]() {
    elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    fired = true;
  });
  for (int i = 0; i < 200 && !fired; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(fired);
  EXPECT_GE(elapsed_ms, 45);
  EXPECT_LE(elapsed_ms, 500);  // generous for loaded CI machines
}

TEST(EventLoopTest, TimersFireInDeadlineOrder) {
  EventLoop loop;
  std::vector<int> order;
  std::atomic<bool> done{false};
  loop.ScheduleAfter(Duration::Millis(60), [&]() {
    order.push_back(2);
    done = true;
  });
  loop.ScheduleAfter(Duration::Millis(20), [&]() { order.push_back(1); });
  for (int i = 0; i < 200 && !done; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(done);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventLoopTest, CancelledTimerDoesNotFire) {
  EventLoop loop;
  std::atomic<bool> fired{false};
  TimerId id = loop.ScheduleAfter(Duration::Millis(30),
                                  [&]() { fired = true; });
  EXPECT_TRUE(loop.CancelTimer(id));
  EXPECT_FALSE(loop.CancelTimer(id));
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_FALSE(fired);
}

TEST(EventLoopTest, StopIsIdempotentAndDropsPendingWork) {
  auto loop = std::make_unique<EventLoop>();
  std::atomic<bool> fired{false};
  loop->ScheduleAfter(Duration::Seconds(30), [&]() { fired = true; });
  loop->Stop();
  loop->Stop();
  loop.reset();
  EXPECT_FALSE(fired);
}

TEST(UdpTransportTest, LoopbackDelivery) {
  EventLoop loop_a;
  EventLoop loop_b;

  struct Capture : PacketHandler {
    std::atomic<int> count{0};
    std::vector<uint8_t> last;
    NodeId last_from;
    MessageClass last_cls = MessageClass::kData;
    void HandlePacket(NodeId from, MessageClass cls,
                      std::span<const uint8_t> bytes) override {
      last.assign(bytes.begin(), bytes.end());
      last_from = from;
      last_cls = cls;
      ++count;
    }
  } capture;

  UdpTransport a(NodeId(1), &loop_a, nullptr);
  UdpTransport b(NodeId(2), &loop_b, &capture);
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  EXPECT_NE(a.port(), 0);
  a.AddPeer(NodeId(2), b.port());

  a.Send(NodeId(2), MessageClass::kConsistency, {9, 8, 7});
  for (int i = 0; i < 200 && capture.count == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(capture.count, 1);
  EXPECT_EQ(capture.last, (std::vector<uint8_t>{9, 8, 7}));
  EXPECT_EQ(capture.last_from, NodeId(1));
  EXPECT_EQ(capture.last_cls, MessageClass::kConsistency);
  EXPECT_EQ(a.stats().sent[static_cast<int>(MessageClass::kConsistency)], 1u);
  EXPECT_EQ(
      b.stats().received[static_cast<int>(MessageClass::kConsistency)], 1u);

  a.Stop();
  b.Stop();
}

TEST(UdpTransportTest, MulticastCountsOneSend) {
  EventLoop loop_a;
  EventLoop loop_b;
  EventLoop loop_c;
  struct Counter : PacketHandler {
    std::atomic<int> count{0};
    void HandlePacket(NodeId, MessageClass,
                      std::span<const uint8_t>) override {
      ++count;
    }
  } cb, cc;
  UdpTransport a(NodeId(1), &loop_a, nullptr);
  UdpTransport b(NodeId(2), &loop_b, &cb);
  UdpTransport c(NodeId(3), &loop_c, &cc);
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  ASSERT_TRUE(c.Start().ok());
  a.AddPeer(NodeId(2), b.port());
  a.AddPeer(NodeId(3), c.port());

  NodeId dst[2] = {NodeId(2), NodeId(3)};
  a.Multicast(dst, MessageClass::kConsistency, {1});
  for (int i = 0; i < 200 && (cb.count == 0 || cc.count == 0); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(cb.count, 1);
  EXPECT_EQ(cc.count, 1);
  // The paper's accounting: one logical send regardless of fan-out.
  EXPECT_EQ(a.stats().TotalSent(), 1u);
  a.Stop();
  b.Stop();
  c.Stop();
}

TEST(UdpTransportTest, SendToUnknownPeerIsDroppedSafely) {
  EventLoop loop;
  UdpTransport a(NodeId(1), &loop, nullptr);
  ASSERT_TRUE(a.Start().ok());
  a.Send(NodeId(99), MessageClass::kData, {1});  // no peer registered
  a.Stop();
  SUCCEED();
}

TEST(UdpTransportTest, DropEveryNthLosesDeterministically) {
  EventLoop loop_a;
  EventLoop loop_b;
  struct Counter : PacketHandler {
    std::atomic<int> count{0};
    void HandlePacket(NodeId, MessageClass,
                      std::span<const uint8_t>) override {
      ++count;
    }
  } counter;
  UdpTransport a(NodeId(1), &loop_a, nullptr);
  UdpTransport b(NodeId(2), &loop_b, &counter);
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  a.AddPeer(NodeId(2), b.port());
  // The decorator's deterministic counter mode replaces the old transport
  // hook; per-destination counting gives exactly 5/10 losses here.
  FaultInjectingTransport faulty(&a, &loop_a);
  faulty.set_drop_every_nth(2);
  for (int i = 0; i < 10; ++i) {
    faulty.Send(NodeId(2), MessageClass::kData, {static_cast<uint8_t>(i)});
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(counter.count, 5);
  EXPECT_EQ(faulty.fault_stats().dropped_nth, 5u);
  a.Stop();
  b.Stop();
}

TEST(FaultInjectingTransportTest, DuplicatesAndDelaysArriveOverUdp) {
  EventLoop loop_a;
  EventLoop loop_b;
  struct Counter : PacketHandler {
    std::atomic<int> count{0};
    void HandlePacket(NodeId, MessageClass,
                      std::span<const uint8_t>) override {
      ++count;
    }
  } counter;
  UdpTransport a(NodeId(1), &loop_a, nullptr);
  UdpTransport b(NodeId(2), &loop_b, &counter);
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  a.AddPeer(NodeId(2), b.port());
  FaultInjectingTransport faulty(&a, &loop_a);
  TransportFaults faults;
  faults.dup_prob = 1.0;  // every send is doubled
  faults.dup_delay_max = Duration::Millis(2);
  faults.delay_prob = 1.0;  // and the original is jittered too
  faults.delay_max = Duration::Millis(2);
  faults.seed = 7;
  faulty.SetFaults(faults);
  for (int i = 0; i < 10; ++i) {
    faulty.Send(NodeId(2), MessageClass::kData, {static_cast<uint8_t>(i)});
  }
  for (int i = 0; i < 200 && counter.count < 20; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(counter.count, 20);  // 10 originals + 10 duplicates
  FaultInjectingTransport::FaultStats stats = faulty.fault_stats();
  EXPECT_EQ(stats.duplicated, 10u);
  EXPECT_EQ(stats.delayed, 10u);
  a.Stop();
  b.Stop();
}

TEST(FaultInjectingTransportTest, BlockedPeerPartitionsSendSide) {
  EventLoop loop_a;
  EventLoop loop_b;
  struct Counter : PacketHandler {
    std::atomic<int> count{0};
    void HandlePacket(NodeId, MessageClass,
                      std::span<const uint8_t>) override {
      ++count;
    }
  } counter;
  UdpTransport a(NodeId(1), &loop_a, nullptr);
  UdpTransport b(NodeId(2), &loop_b, &counter);
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  a.AddPeer(NodeId(2), b.port());
  FaultInjectingTransport faulty(&a, &loop_a);
  faulty.SetPeerBlocked(NodeId(2), true);
  faulty.Send(NodeId(2), MessageClass::kData, {1});
  NodeId dst[1] = {NodeId(2)};
  faulty.Multicast(dst, MessageClass::kData, {2});
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(counter.count, 0);
  EXPECT_EQ(faulty.fault_stats().dropped_blocked, 2u);

  faulty.SetPeerBlocked(NodeId(2), false);  // heal
  faulty.Send(NodeId(2), MessageClass::kData, {3});
  for (int i = 0; i < 200 && counter.count == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(counter.count, 1);
  a.Stop();
  b.Stop();
}

}  // namespace
}  // namespace leases
