// Integration test for the adaptive term policy running inside a live
// cluster (Section 4's dynamic term selection), plus a write-back fuzz with
// a single writer per file -- the usage discipline the mode is meant for.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "src/core/sim_cluster.h"
#include "src/core/term_policy.h"
#include "src/sim/rng.h"
#include "src/workload/v_config.h"

namespace leases {
namespace {

TEST(AdaptiveIntegration, HotReadFileGetsLeasesColdWriteFileDoesNot) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 4);
  AdaptiveTermPolicy* policy = nullptr;
  options.make_policy = [&policy]() {
    auto p = std::make_unique<AdaptiveTermPolicy>();
    policy = p.get();
    return p;
  };
  SimCluster cluster(options);
  FileId doc = *cluster.store().CreatePath("/doc", FileClass::kNormal,
                                           Bytes("d"));
  FileId counter = *cluster.store().CreatePath("/ctr", FileClass::kNormal,
                                               Bytes("0"));

  Rng rng(3);
  uint64_t tick = 0;
  std::function<void(size_t)> traffic = [&](size_t c) {
    cluster.sim().ScheduleAfter(rng.NextExponentialDuration(2.0), [&, c]() {
      cluster.client(c).Read(doc, [](Result<ReadResult>) {});
      if (rng.NextBernoulli(0.6)) {
        cluster.client(c).Write(counter, Bytes(std::to_string(++tick)),
                                [](Result<WriteResult>) {});
      } else {
        cluster.client(c).Read(counter, [](Result<ReadResult>) {});
      }
      traffic(c);
    });
  };
  for (size_t c = 0; c < 4; ++c) {
    traffic(c);
  }
  cluster.RunFor(Duration::Seconds(600));

  ASSERT_NE(policy, nullptr);
  // The read-mostly file earns a healthy term; the write-shared counter is
  // driven to zero ("a heavily write-shared file might be given a lease
  // term of zero").
  EXPECT_GT(policy->Alpha(doc), 1.0);
  EXPECT_GT(policy->TermFor(doc, FileClass::kNormal, NodeId(2)),
            Duration::Seconds(1));
  EXPECT_LE(policy->Alpha(counter), 1.2);
  // And nothing went stale while the policy adapted.
  EXPECT_EQ(cluster.oracle().violations(), 0u);

  // Behavioural check: doc reads are mostly local, counter writes are
  // mostly immediate (no holders to consult).
  uint64_t local = 0;
  uint64_t reads = 0;
  for (size_t c = 0; c < 4; ++c) {
    local += cluster.client(c).stats().local_reads;
    reads += cluster.client(c).stats().reads;
  }
  EXPECT_GT(static_cast<double>(local) / static_cast<double>(reads), 0.4);
}

TEST(AdaptiveIntegration, AdaptsWhenAccessPatternShifts) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 2);
  AdaptiveTermPolicy* policy = nullptr;
  options.make_policy = [&policy]() {
    AdaptiveTermPolicy::Options popts;
    popts.half_life = Duration::Seconds(20);  // adapt quickly for the test
    auto p = std::make_unique<AdaptiveTermPolicy>(popts);
    policy = p.get();
    return p;
  };
  SimCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("x"));

  // Phase 1: read-mostly.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(cluster.SyncRead(0, file).ok());
    cluster.RunFor(Duration::Millis(500));
  }
  Duration term_read_phase =
      policy->TermFor(file, FileClass::kNormal, NodeId(2));
  EXPECT_GT(term_read_phase, Duration::Seconds(1));

  // Phase 2: both clients write-hammer the file.
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(cluster.SyncRead(1, file, Duration::Seconds(30)).ok());
    ASSERT_TRUE(cluster
                    .SyncWrite(i % 2, file, Bytes(std::to_string(i)),
                               Duration::Seconds(30))
                    .ok());
    cluster.RunFor(Duration::Millis(700));
  }
  Duration term_write_phase =
      policy->TermFor(file, FileClass::kNormal, NodeId(2));
  EXPECT_LT(term_write_phase, term_read_phase);
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

class WriteBackFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WriteBackFuzz, SingleWriterPerFileStaysConsistent) {
  // Write-back discipline: each file has one designated writer (like a home
  // directory); everyone reads everything. Staged data, flush timers,
  // revocation flushes, loss and crashes may interleave arbitrarily.
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(5), 3,
                                               GetParam());
  options.client.write_back = true;
  options.client.write_back_delay = Duration::Millis(800);
  options.net.loss_prob = 0.05;
  options.client.request_timeout = Duration::Millis(400);
  options.client.max_retries = 30;
  SimCluster cluster(options);

  std::vector<FileId> files;
  for (int f = 0; f < 3; ++f) {
    files.push_back(*cluster.store().CreatePath(
        "/wb/f" + std::to_string(f), FileClass::kNormal, Bytes("v0")));
  }
  Rng rng(GetParam() * 77 + 1);
  uint64_t tick = 0;
  std::function<void(size_t)> ops = [&](size_t c) {
    cluster.sim().ScheduleAfter(rng.NextExponentialDuration(2.0), [&, c]() {
      size_t f = rng.NextBounded(3);
      if (f == c && rng.NextBernoulli(0.4)) {
        // Only the designated writer writes its file.
        cluster.client(c).Write(files[f],
                                Bytes("w" + std::to_string(++tick)),
                                [](Result<WriteResult>) {});
      } else {
        cluster.client(c).Read(files[f], [](Result<ReadResult>) {});
      }
      ops(c);
    });
  };
  for (size_t c = 0; c < 3; ++c) {
    ops(c);
  }
  cluster.RunFor(Duration::Seconds(300));
  EXPECT_EQ(cluster.oracle().violations(), 0u)
      << (cluster.oracle().violation_log().empty()
              ? "none"
              : cluster.oracle().violation_log()[0]);
  // Liveness: flushes actually happened.
  uint64_t flushes = 0;
  for (size_t c = 0; c < 3; ++c) {
    flushes += cluster.client(c).stats().write_back_flushes;
  }
  EXPECT_GT(flushes, 10u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WriteBackFuzz,
                         ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace leases
