// Tests for the two recovery strategies of Section 2 and for client cache
// eviction:
//
//   * default: persist only the maximum granted term; after a restart hold
//     all writes for that long;
//   * persist_lease_records: one durable write per grant buys instant
//     recovery with holders intact ("the additional I/O traffic is unlikely
//     to be justified unless terms of leases are much longer than the time
//     to recover");
//   * finite caches: LRU eviction with lease relinquish.
#include <gtest/gtest.h>

#include "src/core/sim_cluster.h"
#include "src/workload/v_config.h"

namespace leases {
namespace {

TEST(PersistedLeasesTest, RestartSkipsRecoveryWindow) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 2);
  options.server.persist_lease_records = true;
  SimCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("v1"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  cluster.CrashServer();
  cluster.RunFor(Duration::Seconds(1));
  cluster.RestartServer();

  // No recovery window: the holder set was durably recorded.
  EXPECT_FALSE(cluster.server().InRecovery());
  EXPECT_EQ(cluster.server().stats().recovered_lease_records, 1u);

  // A write right after restart proceeds immediately -- and still consults
  // the recovered holder, who invalidates as usual.
  TimePoint start = cluster.sim().Now();
  Result<WriteResult> w = cluster.SyncWrite(1, file, Bytes("v2"));
  ASSERT_TRUE(w.ok());
  EXPECT_LT(cluster.sim().Now() - start, Duration::Millis(100));
  EXPECT_EQ(cluster.server().stats().approval_rounds, 1u);
  EXPECT_FALSE(cluster.client(0).HasCached(file));
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(PersistedLeasesTest, RecoveredHolderStillProtectedWhenPartitioned) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 2);
  options.server.persist_lease_records = true;
  SimCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("v1"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  cluster.RunFor(Duration::Seconds(2));
  cluster.CrashServer();
  cluster.RestartServer();
  cluster.PartitionClient(0, true);

  // The write must wait out the RECOVERED lease's remaining term -- the
  // durable record preserved the exact expiry, not a blanket window.
  TimePoint start = cluster.sim().Now();
  ASSERT_TRUE(cluster
                  .SyncWrite(1, file, Bytes("v2"), Duration::Seconds(30))
                  .ok());
  Duration waited = cluster.sim().Now() - start;
  EXPECT_GT(waited, Duration::Seconds(6));
  EXPECT_LT(waited, Duration::Seconds(9));
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(PersistedLeasesTest, ExpiredRecordsPrunedAtReload) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(2), 2);
  options.server.persist_lease_records = true;
  SimCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("v1"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  cluster.CrashServer();
  cluster.RunFor(Duration::Seconds(5));  // lease long dead
  cluster.RestartServer();
  EXPECT_EQ(cluster.server().stats().recovered_lease_records, 0u);
  // Write proceeds with no holders and no window.
  TimePoint start = cluster.sim().Now();
  ASSERT_TRUE(cluster.SyncWrite(1, file, Bytes("v2")).ok());
  EXPECT_LT(cluster.sim().Now() - start, Duration::Millis(100));
}

TEST(PersistedLeasesTest, CostsOneDurableWritePerGrant) {
  // The trade the paper calls out: grants now hit persistent storage.
  for (bool persist : {false, true}) {
    ClusterOptions options = MakeVClusterOptions(Duration::Seconds(5), 1);
    options.server.persist_lease_records = persist;
    SimCluster cluster(options);
    FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                              Bytes("x"));
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(cluster.SyncRead(0, file).ok());
      cluster.RunFor(Duration::Seconds(6));  // lapse; next read re-grants
    }
    uint64_t grants = cluster.server().stats().leases_granted;
    EXPECT_EQ(grants, 10u);
    // Covered indirectly: with persist off the only durable write is the
    // single max-term record; with persist on, >= one per grant. The
    // DurableMeta lives inside the cluster, so observe via behaviour above;
    // the accounting itself is unit-tested in fs_test.
  }
}

TEST(RecoveryShedTest, ShedWritesRetryWithBackoffAndEventuallyCommit) {
  // Force the recovering server to shed EVERY queued write with
  // kUnavailable (queue limit 0): the client must degrade gracefully --
  // jittered exponential backoff, not a hot retry loop -- and the write
  // still commits once the recovery window (5 s) closes.
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(5), 2);
  options.server.recovery_queue_limit = 0;
  options.client.max_retries = 8;
  SimCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("v1"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  cluster.CrashServer();
  cluster.RunFor(Duration::Seconds(1));
  cluster.RestartServer();
  ASSERT_TRUE(cluster.server().InRecovery());

  TimePoint start = cluster.sim().Now();
  Result<WriteResult> w =
      cluster.SyncWrite(1, file, Bytes("v2"), Duration::Seconds(60));
  ASSERT_TRUE(w.ok());
  // The write landed only after recovery ended, via kUnavailable retries.
  EXPECT_GT(cluster.sim().Now() - start, Duration::Seconds(3));
  EXPECT_GT(cluster.server().stats().recovery_shed_writes, 0u);
  EXPECT_GT(cluster.client(1).stats().unavailable_retries, 0u);
  EXPECT_EQ(cluster.client(1).stats().writes_failed, 0u);
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(RecoveryShedTest, QueueWithinLimitNeverSheds) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(5), 2);
  SimCluster cluster(options);  // default limit: far above 2 clients
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("v1"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  cluster.CrashServer();
  cluster.RunFor(Duration::Seconds(1));
  cluster.RestartServer();
  ASSERT_TRUE(
      cluster.SyncWrite(1, file, Bytes("v2"), Duration::Seconds(60)).ok());
  EXPECT_EQ(cluster.server().stats().recovery_shed_writes, 0u);
  EXPECT_EQ(cluster.client(1).stats().unavailable_retries, 0u);
  EXPECT_GT(cluster.server().stats().recovery_held_writes, 0u);
}

TEST(CacheEvictionTest, CapacityEnforcedLruVictim) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(30), 1);
  options.client.max_cached_files = 3;
  SimCluster cluster(options);
  std::vector<FileId> files;
  for (int i = 0; i < 5; ++i) {
    files.push_back(*cluster.store().CreatePath(
        "/f" + std::to_string(i), FileClass::kNormal, Bytes("x")));
  }
  // Touch 0,1,2 in order; 0 is oldest.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cluster.SyncRead(0, files[i]).ok());
    cluster.RunFor(Duration::Millis(10));
  }
  EXPECT_EQ(cluster.client(0).cache_size(), 3u);
  // Reading a 4th file evicts file 0 (LRU).
  ASSERT_TRUE(cluster.SyncRead(0, files[3]).ok());
  EXPECT_EQ(cluster.client(0).cache_size(), 3u);
  EXPECT_FALSE(cluster.client(0).HasCached(files[0]));
  EXPECT_TRUE(cluster.client(0).HasCached(files[1]));
  EXPECT_EQ(cluster.client(0).stats().evictions, 1u);
}

TEST(CacheEvictionTest, EvictionRelinquishesTheLease) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(30), 2);
  options.client.max_cached_files = 1;
  SimCluster cluster(options);
  FileId a = *cluster.store().CreatePath("/a", FileClass::kNormal, Bytes("x"));
  FileId b = *cluster.store().CreatePath("/b", FileClass::kNormal, Bytes("x"));
  ASSERT_TRUE(cluster.SyncRead(0, a).ok());
  ASSERT_TRUE(cluster.SyncRead(0, b).ok());  // evicts a, relinquishes
  cluster.RunFor(Duration::Millis(10));
  EXPECT_EQ(cluster.server().ActiveLeaseCount(cluster.store().CoverOf(a)),
            0u);
  // So a write to the evicted file needs no callback -- eviction removed
  // the false sharing the paper warns about.
  ASSERT_TRUE(cluster.SyncWrite(1, a, Bytes("y")).ok());
  EXPECT_EQ(cluster.server().stats().approval_rounds, 0u);
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(CacheEvictionTest, DirtyEntriesAreNotEvicted) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(30), 1);
  options.client.max_cached_files = 1;
  options.client.write_back = true;
  options.client.write_back_delay = Duration::Seconds(60);  // stays dirty
  SimCluster cluster(options);
  FileId a = *cluster.store().CreatePath("/a", FileClass::kNormal, Bytes("x"));
  FileId b = *cluster.store().CreatePath("/b", FileClass::kNormal, Bytes("x"));
  ASSERT_TRUE(cluster.SyncRead(0, a).ok());
  ASSERT_TRUE(cluster.SyncWrite(0, a, Bytes("dirty")).ok());  // staged
  ASSERT_TRUE(cluster.SyncRead(0, b).ok());  // would evict a, but it's dirty
  EXPECT_TRUE(cluster.client(0).HasCached(a));
  // No data loss: the staged write still flushes on demand.
  bool flushed = false;
  cluster.client(0).Flush(a, [&](Result<WriteResult> r) {
    ASSERT_TRUE(r.ok());
    flushed = true;
  });
  cluster.RunFor(Duration::Millis(50));
  EXPECT_TRUE(flushed);
  EXPECT_EQ(Text(cluster.store().Find(a)->data), "dirty");
}

TEST(CacheEvictionTest, EvictedFileRefetchesConsistently) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(30), 2);
  options.client.max_cached_files = 2;
  SimCluster cluster(options);
  std::vector<FileId> files;
  for (int i = 0; i < 4; ++i) {
    files.push_back(*cluster.store().CreatePath(
        "/f" + std::to_string(i), FileClass::kNormal, Bytes("v1")));
  }
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(cluster.SyncRead(0, files[static_cast<size_t>(i)]).ok());
    }
    ASSERT_TRUE(cluster
                    .SyncWrite(1, files[static_cast<size_t>(round % 4)],
                               Bytes("v" + std::to_string(round)))
                    .ok());
  }
  EXPECT_GT(cluster.client(0).stats().evictions, 5u);
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

}  // namespace
}  // namespace leases
