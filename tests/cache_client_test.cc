// Unit tests for CacheClient features: batching, anticipatory extension,
// voluntary relinquish, write-back mode, open() edge cases and cache
// management.
#include <gtest/gtest.h>

#include "src/core/sim_cluster.h"
#include "src/workload/v_config.h"

namespace leases {
namespace {

ClusterOptions Base(size_t clients = 2) {
  return MakeVClusterOptions(Duration::Seconds(10), clients);
}

TEST(BatchingTest, OneExtensionCoversAllCachedFiles) {
  SimCluster cluster(Base());
  std::vector<FileId> files;
  for (int i = 0; i < 5; ++i) {
    files.push_back(*cluster.store().CreatePath(
        "/f" + std::to_string(i), FileClass::kNormal, Bytes("x")));
    ASSERT_TRUE(cluster.SyncRead(0, files.back()).ok());
  }
  cluster.RunFor(Duration::Seconds(11));  // all leases lapse
  ASSERT_TRUE(cluster.SyncRead(0, files[0]).ok());
  // A single request extended every held lease...
  EXPECT_EQ(cluster.client(0).stats().extend_requests, 1u);
  EXPECT_EQ(cluster.client(0).stats().extend_items, 5u);
  // ...so the other files are local hits again without any traffic.
  uint64_t extensions = cluster.server().stats().extension_requests;
  for (FileId f : files) {
    Result<ReadResult> r = cluster.SyncRead(0, f);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->from_cache);
  }
  EXPECT_EQ(cluster.server().stats().extension_requests, extensions);
}

TEST(BatchingTest, DisabledBatchingExtendsOnlyTheReadFile) {
  ClusterOptions options = Base();
  options.client.batch_extensions = false;
  SimCluster cluster(options);
  FileId a = *cluster.store().CreatePath("/a", FileClass::kNormal, Bytes("x"));
  FileId b = *cluster.store().CreatePath("/b", FileClass::kNormal, Bytes("x"));
  ASSERT_TRUE(cluster.SyncRead(0, a).ok());
  ASSERT_TRUE(cluster.SyncRead(0, b).ok());
  cluster.RunFor(Duration::Seconds(11));
  ASSERT_TRUE(cluster.SyncRead(0, a).ok());
  EXPECT_EQ(cluster.client(0).stats().extend_items, 1u);
  // b still has no valid lease.
  EXPECT_TRUE(cluster.client(0).HasValidLease(a));
  EXPECT_FALSE(cluster.client(0).HasValidLease(b));
}

TEST(BatchingTest, ConcurrentReadsJoinOneInFlightRequest) {
  SimCluster cluster(Base());
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("x"));
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    cluster.client(0).Read(file, [&](Result<ReadResult> r) {
      ASSERT_TRUE(r.ok());
      ++done;
    });
  }
  cluster.RunFor(Duration::Seconds(1));
  EXPECT_EQ(done, 5);
  // One fetch served all five concurrent readers.
  EXPECT_EQ(cluster.client(0).stats().remote_fetches, 1u);
  EXPECT_EQ(cluster.server().stats().reads_served, 1u);
}

TEST(AnticipatoryTest, RenewalPreventsReadStalls) {
  ClusterOptions options = Base();
  options.client.anticipatory_extension = true;
  options.client.anticipation_lead = Duration::Seconds(3);
  SimCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("x"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  // Far past the original term: the background renewals kept it valid.
  cluster.RunFor(Duration::Seconds(60));
  EXPECT_TRUE(cluster.client(0).HasValidLease(file));
  Result<ReadResult> r = cluster.SyncRead(0, file);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->from_cache);
  // The cost: extensions happened with no reads at all (idle-client load).
  EXPECT_GE(cluster.client(0).stats().extend_requests, 5u);
}

TEST(RelinquishTest, IdleLeasesAreGivenUpAndWritesSpeedUp) {
  SimCluster cluster(Base(2));
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("x"));
  ASSERT_TRUE(cluster.SyncRead(1, file).ok());
  cluster.RunFor(Duration::Seconds(5));
  cluster.client(1).RelinquishIdle(Duration::Seconds(2));
  cluster.RunFor(Duration::Millis(10));
  EXPECT_EQ(cluster.client(1).stats().keys_relinquished, 1u);
  EXPECT_EQ(cluster.server().stats().relinquishes, 1u);
  EXPECT_EQ(cluster.server().ActiveLeaseCount(
                cluster.store().CoverOf(file)), 0u);
  // A write now needs no approval at all.
  ASSERT_TRUE(cluster.SyncWrite(0, file, Bytes("y")).ok());
  EXPECT_EQ(cluster.server().stats().approval_rounds, 0u);
  // Data stayed cached; the next read only needs an extension.
  EXPECT_TRUE(cluster.client(1).HasCached(file));
}

TEST(RelinquishTest, ActiveLeasesAreKept) {
  SimCluster cluster(Base());
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("x"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  cluster.client(0).RelinquishIdle(Duration::Seconds(2));  // just accessed
  cluster.RunFor(Duration::Millis(10));
  EXPECT_EQ(cluster.client(0).stats().keys_relinquished, 0u);
  EXPECT_TRUE(cluster.client(0).HasValidLease(file));
}

TEST(DropCacheTest, EvictionLosesDataButNotCorrectness) {
  SimCluster cluster(Base());
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("x"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  cluster.client(0).DropCache();
  EXPECT_EQ(cluster.client(0).cache_size(), 0u);
  EXPECT_EQ(cluster.client(0).lease_count(), 0u);
  Result<ReadResult> r = cluster.SyncRead(0, file);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->from_cache);
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(OpenTest, ErrorsPropagate) {
  SimCluster cluster(Base());
  EXPECT_EQ(cluster.SyncOpen(0, "no-slash").code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(cluster.SyncOpen(0, "/missing/file").code(),
            ErrorCode::kNotFound);
  Result<OpenResult> root = cluster.SyncOpen(0, "/");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->file, cluster.store().root());
  EXPECT_EQ(root->file_class, FileClass::kDirectory);
}

TEST(OpenTest, ReturnsModeAndClassFromBinding) {
  SimCluster cluster(Base());
  ASSERT_TRUE(cluster.store()
                  .CreatePath("/bin/tool", FileClass::kInstalled,
                              Bytes("t"), kModeRead)
                  .ok());
  Result<OpenResult> open = cluster.SyncOpen(0, "/bin/tool");
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(open->file_class, FileClass::kInstalled);
  EXPECT_EQ(open->mode, kModeRead);
}

// --- Write-back mode (the paper's non-write-through extension) ---

ClusterOptions WriteBack(size_t clients = 2) {
  ClusterOptions options = Base(clients);
  options.client.write_back = true;
  options.client.write_back_delay = Duration::Millis(500);
  return options;
}

TEST(WriteBackTest, StagedWriteIsLocalUntilFlush) {
  SimCluster cluster(WriteBack());
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("v1"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  Result<WriteResult> w = cluster.SyncWrite(0, file, Bytes("v2"));
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(w->staged);
  // Not at the server yet...
  EXPECT_EQ(Text(cluster.store().Find(file)->data), "v1");
  // ...but read-your-writes holds locally.
  Result<ReadResult> r = cluster.SyncRead(0, file);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Text(r->data), "v2");
  // The background flush timer pushes it through.
  cluster.RunFor(Duration::Seconds(1));
  EXPECT_EQ(Text(cluster.store().Find(file)->data), "v2");
  EXPECT_EQ(cluster.client(0).stats().write_back_flushes, 1u);
}

TEST(WriteBackTest, ExplicitFlush) {
  SimCluster cluster(WriteBack());
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("v1"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  ASSERT_TRUE(cluster.SyncWrite(0, file, Bytes("v2")).ok());
  bool flushed = false;
  cluster.client(0).Flush(file, [&](Result<WriteResult> r) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->version, 2u);
    flushed = true;
  });
  cluster.RunFor(Duration::Millis(50));
  EXPECT_TRUE(flushed);
  EXPECT_EQ(Text(cluster.store().Find(file)->data), "v2");
  // Flushing a clean entry is a no-op success.
  bool noop = false;
  cluster.client(0).Flush(file, [&](Result<WriteResult> r) {
    EXPECT_TRUE(r.ok());
    noop = true;
  });
  cluster.RunFor(Duration::Millis(10));
  EXPECT_TRUE(noop);
}

TEST(WriteBackTest, ApprovalTriggersFlushWithoutDeadlockOrLostData) {
  // The critical interaction: client 0 holds staged dirty data; client 1
  // writes the same file. Client 0 must flush BEFORE approving, the server
  // commits the flush ahead of the blocked write, and nothing deadlocks or
  // is lost: final order is (flush, then write).
  SimCluster cluster(WriteBack(2));
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("v1"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  ASSERT_TRUE(cluster.SyncWrite(0, file, Bytes("staged-by-0")).ok());

  TimePoint start = cluster.sim().Now();
  // Client 1 has no cached entry, so its write goes straight through.
  Result<WriteResult> w =
      cluster.SyncWrite(1, file, Bytes("written-by-1"), Duration::Seconds(5));
  ASSERT_TRUE(w.ok());
  // Resolved by a flush round-trip, not by waiting out the 10 s lease.
  EXPECT_LT(cluster.sim().Now() - start, Duration::Millis(100));
  // Both writes committed, in causal order.
  EXPECT_EQ(w->version, 3u);
  EXPECT_EQ(Text(cluster.store().Find(file)->data), "written-by-1");
  EXPECT_EQ(cluster.client(0).stats().write_back_flushes, 1u);
  EXPECT_EQ(cluster.oracle().violations(), 0u);
  // Client 0's copy was invalidated by its (post-flush) approval.
  EXPECT_FALSE(cluster.client(0).HasCached(file));
}

TEST(WriteBackTest, ReadAfterLeaseLapseFlushesFirst) {
  SimCluster cluster(WriteBack());
  // Long write-back delay so the staged data outlives the lease.
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("v1"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  bool staged = false;
  cluster.client(0).Write(file, Bytes("v2"), [&](Result<WriteResult> r) {
    ASSERT_TRUE(r.ok());
    staged = r->staged;
  });
  cluster.RunFor(Duration::Millis(10));
  ASSERT_TRUE(staged);
  cluster.RunFor(Duration::Seconds(12));  // lease gone; flush timer fired
  Result<ReadResult> r = cluster.SyncRead(0, file);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Text(r->data), "v2");
  EXPECT_EQ(cluster.store().Find(file)->version, 2u);
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(TimeoutTest, UnreachableServerFailsReadsAfterRetries) {
  ClusterOptions options = Base();
  options.client.request_timeout = Duration::Millis(200);
  options.client.max_retries = 3;
  SimCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("x"));
  cluster.PartitionClient(0, true);
  Result<ReadResult> r = cluster.SyncRead(0, file, Duration::Seconds(10));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kTimeout);
  EXPECT_EQ(cluster.client(0).stats().retransmits, 3u);
  EXPECT_EQ(cluster.client(0).stats().timeouts, 1u);
}

}  // namespace
}  // namespace leases
