// Tests for the remaining Section 4 management options: the server's
// wait-for-expiry alternative to approval callbacks, and the client's
// deliberate approval delay ("the combinations of these options give
// different trade-offs between load and response time").
#include <gtest/gtest.h>

#include "src/core/sim_cluster.h"
#include "src/workload/v_config.h"

namespace leases {
namespace {

TEST(WaitForExpiryTest, NoCallbacksWriteWaitsOutTheLease) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(5), 2);
  options.server.consult_holders = false;
  options.client.max_retries = 30;
  SimCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("v1"));
  ASSERT_TRUE(cluster.SyncRead(1, file).ok());
  cluster.RunFor(Duration::Seconds(2));

  TimePoint start = cluster.sim().Now();
  Result<WriteResult> w =
      cluster.SyncWrite(0, file, Bytes("v2"), Duration::Seconds(30));
  ASSERT_TRUE(w.ok());
  // Waited out the ~3 s remaining on the lease; no approval traffic at all.
  Duration waited = cluster.sim().Now() - start;
  EXPECT_GT(waited, Duration::Seconds(2));
  EXPECT_LT(waited, Duration::Seconds(6));
  EXPECT_EQ(cluster.server().stats().approval_rounds, 0u);
  EXPECT_EQ(cluster.server().stats().writes_expired_commit, 1u);
  // The holder's copy simply expired; its next read revalidates.
  Result<ReadResult> r = cluster.SyncRead(1, file);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Text(r->data), "v2");
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(WaitForExpiryTest, UnsharedWritesStillImmediate) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 2);
  options.server.consult_holders = false;
  SimCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("v1"));
  TimePoint start = cluster.sim().Now();
  ASSERT_TRUE(cluster.SyncWrite(0, file, Bytes("v2")).ok());
  EXPECT_LT(cluster.sim().Now() - start, Duration::Millis(20));
}

TEST(WaitForExpiryTest, StarvationGuardStillBlocksNewLeases) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(5), 3);
  options.server.consult_holders = false;
  options.client.max_retries = 30;
  SimCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("v1"));
  ASSERT_TRUE(cluster.SyncRead(1, file).ok());
  bool done = false;
  cluster.client(0).Write(file, Bytes("v2"),
                          [&](Result<WriteResult>) { done = true; });
  cluster.RunFor(Duration::Seconds(1));
  ASSERT_FALSE(done);
  // Readers during the wait get data but no lease (otherwise the write
  // would never drain).
  ASSERT_TRUE(cluster.SyncRead(2, file, Duration::Seconds(2)).ok());
  EXPECT_FALSE(cluster.client(2).HasValidLease(file));
  cluster.RunFor(Duration::Seconds(6));
  EXPECT_TRUE(done);
}

TEST(ApprovalDelayTest, WriteWaitsTheConfiguredHold) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 2);
  options.client.approval_delay = Duration::Seconds(2);
  SimCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("v1"));
  ASSERT_TRUE(cluster.SyncRead(1, file).ok());
  TimePoint start = cluster.sim().Now();
  ASSERT_TRUE(
      cluster.SyncWrite(0, file, Bytes("v2"), Duration::Seconds(30)).ok());
  Duration waited = cluster.sim().Now() - start;
  // Bounded below by the hold, above by the lease term.
  EXPECT_GT(waited, Duration::Seconds(2) - Duration::Millis(50));
  EXPECT_LT(waited, Duration::Seconds(3));
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(ApprovalDelayTest, HolderKeepsServingDuringTheHold) {
  // The point of deferring: the holder finishes its burst of local reads
  // before giving up its copy. Reads during the hold are still consistent
  // -- the write has not committed (or been acked).
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 2);
  options.client.approval_delay = Duration::Seconds(2);
  SimCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("v1"));
  ASSERT_TRUE(cluster.SyncRead(1, file).ok());
  bool write_done = false;
  cluster.client(0).Write(file, Bytes("v2"),
                          [&](Result<WriteResult>) { write_done = true; });
  cluster.RunFor(Duration::Seconds(1));
  ASSERT_FALSE(write_done);
  Result<ReadResult> during = cluster.SyncRead(1, file);
  ASSERT_TRUE(during.ok());
  EXPECT_TRUE(during->from_cache);
  EXPECT_EQ(Text(during->data), "v1");  // pre-commit: legal
  cluster.RunFor(Duration::Seconds(2));
  EXPECT_TRUE(write_done);
  EXPECT_FALSE(cluster.client(1).HasCached(file));
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(ApprovalDelayTest, ExpiryStillBoundsTheWriterDespiteTheHold) {
  // A hold longer than the lease term cannot delay the writer past expiry.
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(3), 2);
  options.client.approval_delay = Duration::Seconds(60);
  options.client.max_retries = 30;
  SimCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("v1"));
  ASSERT_TRUE(cluster.SyncRead(1, file).ok());
  TimePoint start = cluster.sim().Now();
  ASSERT_TRUE(
      cluster.SyncWrite(0, file, Bytes("v2"), Duration::Seconds(30)).ok());
  Duration waited = cluster.sim().Now() - start;
  EXPECT_LT(waited, Duration::Seconds(4));
  EXPECT_EQ(cluster.server().stats().writes_expired_commit, 1u);
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(ApprovalDelayTest, DirtyEntryFlushesAfterTheHoldNothingLost) {
  // approval_delay + write_back: when the hold expires on a dirty entry,
  // the staged data must flush (and commit ahead) before the approval --
  // deferring must never silently discard a staged write.
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 2);
  options.client.approval_delay = Duration::Seconds(1);
  options.client.write_back = true;
  options.client.write_back_delay = Duration::Seconds(60);  // stays staged
  SimCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("v1"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  ASSERT_TRUE(cluster.SyncWrite(0, file, Bytes("staged")).ok());  // dirty

  Result<WriteResult> w =
      cluster.SyncWrite(1, file, Bytes("other"), Duration::Seconds(30));
  ASSERT_TRUE(w.ok());
  // Both writes committed, flush first: versions 2 (flush) then 3 (other).
  EXPECT_EQ(w->version, 3u);
  EXPECT_EQ(Text(cluster.store().Find(file)->data), "other");
  EXPECT_EQ(cluster.client(0).stats().write_back_flushes, 1u);
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(ApprovalDelayTest, DuplicateCallbacksDuringHoldAreIdempotent) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 2);
  options.client.approval_delay = Duration::Seconds(2);
  options.server.approval_retry_interval = Duration::Millis(200);
  options.net.loss_prob = 0.2;  // force retransmitted callbacks
  options.net.seed = 77;
  options.client.max_retries = 40;
  SimCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("v1"));
  ASSERT_TRUE(cluster.SyncRead(1, file, Duration::Seconds(30)).ok());
  Result<WriteResult> w =
      cluster.SyncWrite(0, file, Bytes("v2"), Duration::Seconds(30));
  ASSERT_TRUE(w.ok());
  // Exactly one approval despite retried callbacks during the hold.
  EXPECT_LE(cluster.client(1).stats().approvals_granted, 2u);
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

}  // namespace
}  // namespace leases
