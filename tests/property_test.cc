// Randomized property tests: under arbitrary interleavings of reads,
// writes, message loss, partitions, client crashes and server crashes --
// with well-behaved clocks -- the oracle must observe ZERO consistency
// violations, and the system must converge once faults stop. This is the
// paper's central claim ("non-Byzantine failures affect performance, not
// correctness") checked over a parameter sweep.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/core/sim_cluster.h"
#include "src/sim/rng.h"
#include "src/workload/v_config.h"

namespace leases {
namespace {

struct FuzzConfig {
  uint64_t seed;
  double loss;
  int term_seconds;
  // Feature axes: exercise the optional mechanisms under the same fault mix.
  bool persist_leases = false;
  size_t max_cached_files = 0;
};

class LeaseFuzz : public ::testing::TestWithParam<FuzzConfig> {};

constexpr size_t kClients = 5;
constexpr size_t kFiles = 4;

class FuzzHarness {
 public:
  explicit FuzzHarness(const FuzzConfig& config)
      : config_(config), rng_(config.seed * 2654435761u + 13) {
    ClusterOptions options = MakeVClusterOptions(
        Duration::Seconds(config.term_seconds), kClients, config.seed);
    options.net.loss_prob = config.loss;
    options.server.persist_lease_records = config.persist_leases;
    options.client.max_cached_files = config.max_cached_files;
    // Fast retries keep the run short relative to fault durations.
    options.client.request_timeout = Duration::Millis(500);
    options.client.max_retries = 30;
    cluster_ = std::make_unique<SimCluster>(options);
    for (size_t f = 0; f < kFiles; ++f) {
      files_.push_back(*cluster_->store().CreatePath(
          "/fuzz/f" + std::to_string(f), FileClass::kNormal, Bytes("v0")));
    }
  }

  void Run(Duration length) {
    ScheduleFaults();
    for (size_t c = 0; c < kClients; ++c) {
      ScheduleOps(c);
    }
    cluster_->RunFor(length);
    HealEverything();
    cluster_->RunFor(Duration::Seconds(90));
  }

  SimCluster& cluster() { return *cluster_; }
  uint64_t reads_ok() const { return reads_ok_; }
  uint64_t writes_ok() const { return writes_ok_; }

  // After healing: every client must read the current committed state.
  void CheckConvergence() {
    for (size_t f = 0; f < kFiles; ++f) {
      uint64_t current = cluster_->store().Find(files_[f])->version;
      for (size_t c = 0; c < kClients; ++c) {
        Result<ReadResult> r =
            cluster_->SyncRead(c, files_[f], Duration::Seconds(60));
        ASSERT_TRUE(r.ok()) << "client " << c << " file " << f;
        EXPECT_GE(r->version, current) << "client " << c << " file " << f;
      }
    }
  }

 private:
  void ScheduleOps(size_t client) {
    Duration gap = rng_.NextExponentialDuration(2.0);  // ~2 ops/s/client
    cluster_->sim().ScheduleAfter(gap, [this, client]() {
      if (cluster_->ClientUp(client)) {
        FileId file = files_[rng_.NextBounded(kFiles)];
        if (rng_.NextBernoulli(0.25)) {
          std::string payload = "w" + std::to_string(++write_seq_);
          cluster_->client(client).Write(
              file, Bytes(payload), [this](Result<WriteResult> r) {
                if (r.ok()) {
                  ++writes_ok_;
                }
              });
        } else {
          cluster_->client(client).Read(file, [this](Result<ReadResult> r) {
            if (r.ok()) {
              ++reads_ok_;
            }
          });
        }
      }
      ScheduleOps(client);
    });
  }

  void ScheduleFaults() {
    Duration gap = rng_.NextExponentialDuration(1.0 / 15.0);  // ~every 15 s
    cluster_->sim().ScheduleAfter(gap, [this]() {
      if (stop_faults_) {
        return;
      }
      InjectRandomFault();
      ScheduleFaults();
    });
  }

  void InjectRandomFault() {
    switch (rng_.NextBounded(3)) {
      case 0: {  // transient partition of one client
        size_t victim = rng_.NextBounded(kClients);
        if (!partitioned_[victim]) {
          partitioned_[victim] = true;
          cluster_->PartitionClient(victim, true);
          Duration heal = rng_.NextExponentialDuration(1.0 / 8.0);
          cluster_->sim().ScheduleAfter(heal, [this, victim]() {
            partitioned_[victim] = false;
            cluster_->PartitionClient(victim, false);
          });
        }
        break;
      }
      case 1: {  // client crash + restart
        size_t victim = rng_.NextBounded(kClients);
        if (cluster_->ClientUp(victim)) {
          cluster_->CrashClient(victim);
          Duration down = rng_.NextExponentialDuration(1.0 / 5.0);
          cluster_->sim().ScheduleAfter(down, [this, victim]() {
            if (!cluster_->ClientUp(victim)) {
              cluster_->RestartClient(victim);
            }
          });
        }
        break;
      }
      case 2: {  // server crash + restart (recovery window follows)
        if (cluster_->ServerUp()) {
          cluster_->CrashServer();
          Duration down = rng_.NextExponentialDuration(1.0 / 3.0);
          cluster_->sim().ScheduleAfter(down, [this]() {
            if (!cluster_->ServerUp()) {
              cluster_->RestartServer();
            }
          });
        }
        break;
      }
    }
  }

  void HealEverything() {
    stop_faults_ = true;
    if (!cluster_->ServerUp()) {
      cluster_->RestartServer();
    }
    for (size_t c = 0; c < kClients; ++c) {
      if (!cluster_->ClientUp(c)) {
        cluster_->RestartClient(c);
      }
      cluster_->PartitionClient(c, false);
      partitioned_[c] = false;
    }
    cluster_->network().set_loss_prob(0);
  }

  FuzzConfig config_;
  Rng rng_;
  std::unique_ptr<SimCluster> cluster_;
  std::vector<FileId> files_;
  bool partitioned_[kClients] = {};
  bool stop_faults_ = false;
  uint64_t write_seq_ = 0;
  uint64_t reads_ok_ = 0;
  uint64_t writes_ok_ = 0;
};

TEST_P(LeaseFuzz, NoViolationsUnderRandomFaults) {
  FuzzHarness harness(GetParam());
  harness.Run(Duration::Seconds(300));

  const Oracle& oracle = harness.cluster().oracle();
  EXPECT_EQ(oracle.violations(), 0u)
      << "first violations: "
      << (oracle.violation_log().empty() ? "none" : oracle.violation_log()[0]);
  // Liveness: the system made real progress despite the faults.
  EXPECT_GT(harness.reads_ok(), 100u);
  EXPECT_GT(harness.writes_ok(), 20u);
  harness.CheckConvergence();
  EXPECT_EQ(oracle.violations(), 0u);
}

std::string FuzzName(const ::testing::TestParamInfo<FuzzConfig>& info) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "seed%llu_loss%d_term%d%s%s",
                static_cast<unsigned long long>(info.param.seed),
                static_cast<int>(info.param.loss * 100),
                info.param.term_seconds,
                info.param.persist_leases ? "_persist" : "",
                info.param.max_cached_files > 0 ? "_tinycache" : "");
  return buf;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LeaseFuzz,
    ::testing::Values(FuzzConfig{1, 0.0, 10}, FuzzConfig{2, 0.0, 10},
                      FuzzConfig{3, 0.1, 10}, FuzzConfig{4, 0.1, 10},
                      FuzzConfig{5, 0.3, 10}, FuzzConfig{6, 0.3, 10},
                      FuzzConfig{7, 0.1, 2}, FuzzConfig{8, 0.1, 2},
                      FuzzConfig{9, 0.3, 2}, FuzzConfig{10, 0.0, 30},
                      FuzzConfig{11, 0.1, 30}, FuzzConfig{12, 0.2, 5},
                      // persistent lease records under crashes + loss
                      FuzzConfig{13, 0.1, 10, true, 0},
                      FuzzConfig{14, 0.3, 5, true, 0},
                      FuzzConfig{15, 0.0, 10, true, 0},
                      // tiny caches: constant eviction + relinquish churn
                      FuzzConfig{16, 0.1, 10, false, 2},
                      FuzzConfig{17, 0.2, 5, false, 1},
                      // both at once
                      FuzzConfig{18, 0.1, 10, true, 2}),
    FuzzName);

}  // namespace
}  // namespace leases
