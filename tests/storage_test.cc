// Unit tests for the durable storage plane (src/fs/storage.h, journal.h):
// CRC framing, the deterministic MemoryBackend, DurableMeta over a backend,
// and the on-disk JournalBackend's reopen repairs (torn tail, corrupt
// record, aborted compaction). Crash-point injection is exercised by the
// matrix in journal_crash_test.cc.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/fs/file_store.h"
#include "src/fs/journal.h"
#include "src/fs/storage.h"

namespace leases {
namespace {

// Fresh scratch directory under CWD, removed on scope exit.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_("leases_" + tag + "." + std::to_string(::getpid()) + ".tmp") {
    std::filesystem::remove_all(path_);
  }
  ~ScratchDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<MetaRecord> Drain(StorageBackend& backend) {
  std::vector<MetaRecord> out;
  EXPECT_TRUE(
      backend.Replay([&out](const MetaRecord& r) { out.push_back(r); }).ok());
  return out;
}

uint64_t FileSize(const std::string& path) {
  std::error_code ec;
  auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<uint64_t>(size);
}

TEST(Crc32Test, KnownVectors) {
  const std::string check = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(check.data()),
                  check.size()),
            0xCBF43926u);  // the classic CRC-32/IEEE check value
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
  // Any bit flip must move the checksum.
  std::string flipped = check;
  flipped[4] ^= 0x01;
  EXPECT_NE(Crc32(reinterpret_cast<const uint8_t*>(flipped.data()),
                  flipped.size()),
            0xCBF43926u);
}

TEST(MemoryBackendTest, AppendReplayRoundTrip) {
  MemoryBackend backend;
  ASSERT_TRUE(backend.Append({"a", 1, false}).ok());
  ASSERT_TRUE(backend.Append({"b", 2, false}).ok());
  ASSERT_TRUE(backend.Append({"a", 0, true}).ok());
  std::vector<MetaRecord> records = Drain(backend);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].key, "a");
  EXPECT_EQ(records[2].erase, true);
  EXPECT_EQ(backend.stats().appends, 3u);
  EXPECT_EQ(backend.stats().replays, 1u);
  EXPECT_EQ(backend.stats().replayed_records, 3u);
}

TEST(MemoryBackendTest, CompactReplacesHistory) {
  MemoryBackend backend;
  ASSERT_TRUE(backend.Append({"a", 1, false}).ok());
  ASSERT_TRUE(backend.Append({"a", 2, false}).ok());
  ASSERT_TRUE(backend.Compact({{"a", 2}}).ok());
  ASSERT_TRUE(backend.Append({"b", 3, false}).ok());
  std::vector<MetaRecord> records = Drain(backend);
  ASSERT_EQ(records.size(), 2u);  // snapshot entry + post-compaction append
  EXPECT_EQ(records[0].key, "a");
  EXPECT_EQ(records[0].value, 2);
  EXPECT_EQ(records[1].key, "b");
  EXPECT_EQ(backend.stats().compactions, 1u);
}

TEST(MemoryBackendTest, PowerCutDamagesOnlyTheTail) {
  for (TailDamage damage : {TailDamage::kTorn, TailDamage::kCorrupt}) {
    MemoryBackend backend;
    ASSERT_TRUE(backend.Append({"committed", 7, false}).ok());
    backend.PowerCut(damage);
    // Dead until recovery: appends fail un-acknowledged.
    EXPECT_FALSE(backend.Append({"lost", 8, false}).ok());
    std::vector<MetaRecord> records = Drain(backend);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].key, "committed");
    const StorageStats& stats = backend.stats();
    EXPECT_EQ(stats.truncated_tails + stats.corrupt_dropped, 1u);
    // Recovered: appends work again.
    EXPECT_TRUE(backend.Append({"after", 9, false}).ok());
  }
}

TEST(MemoryBackendTest, CleanPowerCutLosesNothing) {
  MemoryBackend backend;
  ASSERT_TRUE(backend.Append({"a", 1, false}).ok());
  backend.PowerCut(TailDamage::kClean);
  EXPECT_EQ(Drain(backend).size(), 1u);
  EXPECT_EQ(backend.stats().truncated_tails, 0u);
  EXPECT_EQ(backend.stats().corrupt_dropped, 0u);
}

TEST(DurableMetaTest, DefaultStaysInMemory) {
  DurableMeta meta;
  EXPECT_FALSE(meta.durable());
  EXPECT_EQ(meta.storage_stats(), nullptr);
  meta.Save("k", 42);
  EXPECT_EQ(meta.Load("k").value_or(0), 42);
  EXPECT_TRUE(meta.Reopen().ok());   // no-op without a backend
  EXPECT_TRUE(meta.Compact().ok());  // ditto
  EXPECT_EQ(meta.Load("k").value_or(0), 42);
}

TEST(DurableMetaTest, ReopenRebuildsFromBackend) {
  MemoryBackend backend;
  DurableMeta meta(&backend);
  meta.Save("max_term_us", 10'000'000);
  meta.Save("boot_count", 1);
  meta.Save("boot_count", 2);
  meta.Erase("max_term_us");
  meta.Save("lease/1", 5);

  DurableMeta reborn(&backend);
  ASSERT_TRUE(reborn.Reopen().ok());
  EXPECT_FALSE(reborn.Load("max_term_us").has_value());
  EXPECT_EQ(reborn.Load("boot_count").value_or(0), 2);
  EXPECT_EQ(reborn.Load("lease/1").value_or(0), 5);
}

TEST(DurableMetaTest, PrefixOpsJournalPerKey) {
  MemoryBackend backend;
  DurableMeta meta(&backend);
  meta.Save("lease/2", 2);
  meta.Save("lease/1", 1);
  meta.Save("other", 9);

  // Sorted enumeration regardless of insertion order.
  auto leases = meta.LoadPrefix("lease/");
  ASSERT_EQ(leases.size(), 2u);
  EXPECT_EQ(leases[0].first, "lease/1");
  EXPECT_EQ(leases[1].first, "lease/2");

  meta.ErasePrefix("lease/");
  EXPECT_TRUE(meta.LoadPrefix("lease/").empty());
  EXPECT_EQ(meta.Load("other").value_or(0), 9);

  // The erases were journaled: a replayed meta agrees.
  DurableMeta reborn(&backend);
  ASSERT_TRUE(reborn.Reopen().ok());
  EXPECT_TRUE(reborn.LoadPrefix("lease/").empty());
  EXPECT_EQ(reborn.Load("other").value_or(0), 9);
}

TEST(DurableMetaTest, FailedAppendSurfacesAndDoesNotAdvanceCache) {
  MemoryBackend backend;
  DurableMeta meta(&backend);
  ASSERT_TRUE(meta.Save("max_term_us", 1).ok());
  backend.PowerCut(TailDamage::kClean);  // dead: every append now fails
  // Not durable => not visible, and the caller is told so.
  EXPECT_FALSE(meta.Save("max_term_us", 2).ok());
  EXPECT_EQ(meta.Load("max_term_us").value_or(0), 1);
  EXPECT_FALSE(meta.Erase("max_term_us").ok());
  EXPECT_TRUE(meta.Load("max_term_us").has_value());
  EXPECT_FALSE(meta.ErasePrefix("max_").ok());
  EXPECT_TRUE(meta.Load("max_term_us").has_value());
}

TEST(DurableMetaTest, CompactFoldsJournal) {
  MemoryBackend backend;
  DurableMeta meta(&backend);
  for (int i = 0; i < 10; ++i) {
    meta.Save("k", i);
  }
  ASSERT_TRUE(meta.Compact().ok());
  DurableMeta reborn(&backend);
  ASSERT_TRUE(reborn.Reopen().ok());
  EXPECT_EQ(reborn.Load("k").value_or(-1), 9);
  EXPECT_EQ(backend.stats().replayed_records, 1u);  // one snapshot entry
}

TEST(JournalBackendTest, PersistsAcrossBackendObjects) {
  ScratchDir dir("journal_roundtrip");
  {
    JournalBackend journal(dir.path());
    ASSERT_TRUE(journal.Open().ok());
    ASSERT_TRUE(journal.Append({"a", 1, false}).ok());
    ASSERT_TRUE(journal.Append({"key with spaces", -7, false}).ok());
    ASSERT_TRUE(journal.Append({"a", 0, true}).ok());
  }
  JournalBackend reopened(dir.path());
  ASSERT_TRUE(reopened.Open().ok());
  std::vector<MetaRecord> records = Drain(reopened);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[1].key, "key with spaces");
  EXPECT_EQ(records[1].value, -7);
  EXPECT_TRUE(records[2].erase);
  EXPECT_EQ(reopened.stats().truncated_tails, 0u);
  EXPECT_EQ(reopened.stats().corrupt_dropped, 0u);
}

TEST(JournalBackendTest, TornTailTruncatedOnReplay) {
  ScratchDir dir("journal_torn");
  JournalBackend journal(dir.path());
  ASSERT_TRUE(journal.Open().ok());
  ASSERT_TRUE(journal.Append({"committed", 1, false}).ok());
  uint64_t intact_size = FileSize(dir.path() + "/journal");
  journal.PowerCut(TailDamage::kTorn);
  EXPECT_TRUE(journal.dead());
  EXPECT_GT(FileSize(dir.path() + "/journal"), intact_size);

  std::vector<MetaRecord> records = Drain(journal);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "committed");
  EXPECT_EQ(journal.stats().truncated_tails, 1u);
  EXPECT_FALSE(journal.dead());
  // The repair is durable: the file shrank back to the intact prefix.
  EXPECT_EQ(FileSize(dir.path() + "/journal"), intact_size);
}

TEST(JournalBackendTest, CorruptRecordDroppedOnReplay) {
  ScratchDir dir("journal_corrupt");
  JournalBackend journal(dir.path());
  ASSERT_TRUE(journal.Open().ok());
  ASSERT_TRUE(journal.Append({"committed", 1, false}).ok());
  journal.PowerCut(TailDamage::kCorrupt);

  std::vector<MetaRecord> records = Drain(journal);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "committed");
  EXPECT_EQ(journal.stats().corrupt_dropped, 1u);
}

TEST(JournalBackendTest, MidLogCorruptionRefusedOnReplay) {
  // A crashed append can only damage the final frame. Damage in the MIDDLE
  // of the log -- with intact acknowledged records after it -- is bit rot,
  // and auto-truncating there would silently discard those records. Replay
  // must refuse and surface the error instead.
  ScratchDir dir("journal_midrot");
  {
    JournalBackend journal(dir.path());
    ASSERT_TRUE(journal.Open().ok());
    ASSERT_TRUE(journal.Append({"k0", 0, false}).ok());
    ASSERT_TRUE(journal.Append({"k1", 1, false}).ok());
    ASSERT_TRUE(journal.Append({"k2", 2, false}).ok());
  }
  const std::string path = dir.path() + "/journal";
  const uint64_t size = FileSize(path);
  ASSERT_EQ(size % 3, 0u);  // three identically-sized frames
  {
    // Flip one payload byte of the middle record on disk.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    std::streamoff at = static_cast<std::streamoff>(size / 3 + 8);
    f.seekg(at);
    char byte = 0;
    f.read(&byte, 1);
    byte ^= 0x40;
    f.seekp(at);
    f.write(&byte, 1);
  }
  JournalBackend reopened(dir.path());
  ASSERT_TRUE(reopened.Open().ok());
  Status replayed = reopened.Replay([](const MetaRecord&) {});
  EXPECT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.code(), ErrorCode::kCorrupt);
  // Nothing was truncated: every acknowledged byte is still on disk.
  EXPECT_EQ(FileSize(path), size);
}

TEST(JournalBackendTest, CompactionIsAtomicAndAbortedTmpIgnored) {
  ScratchDir dir("journal_compact");
  JournalBackend journal(dir.path());
  ASSERT_TRUE(journal.Open().ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(journal.Append({"k", i, false}).ok());
  }
  ASSERT_TRUE(journal.Compact({{"k", 4}}).ok());
  EXPECT_EQ(FileSize(dir.path() + "/journal"), 0u);
  ASSERT_TRUE(journal.Append({"post", 9, false}).ok());

  // A stray snapshot.tmp (aborted compaction from a crashed process) must
  // be ignored and removed by reopen.
  {
    std::ofstream tmp(dir.path() + "/snapshot.tmp", std::ios::binary);
    tmp << "garbage from a crashed compaction";
  }
  JournalBackend reopened(dir.path());
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_FALSE(std::filesystem::exists(dir.path() + "/snapshot.tmp"));
  std::vector<MetaRecord> records = Drain(reopened);
  ASSERT_EQ(records.size(), 2u);  // snapshot "k"=4, then "post"
  EXPECT_EQ(records[0].value, 4);
  EXPECT_EQ(records[1].key, "post");
}

TEST(JournalBackendTest, DurableMetaOverJournalSurvivesProcessRestart) {
  ScratchDir dir("journal_meta");
  {
    JournalBackend journal(dir.path());
    ASSERT_TRUE(journal.Open().ok());
    DurableMeta meta(&journal);
    ASSERT_TRUE(meta.Reopen().ok());
    meta.Save("max_term_us", 10'000'000);
    meta.Save("boot_count", 1);
  }
  JournalBackend journal(dir.path());
  ASSERT_TRUE(journal.Open().ok());
  DurableMeta meta(&journal);
  ASSERT_TRUE(meta.Reopen().ok());
  EXPECT_EQ(meta.Load("max_term_us").value_or(0), 10'000'000);
  EXPECT_EQ(meta.Load("boot_count").value_or(0), 1);
}

}  // namespace
}  // namespace leases
