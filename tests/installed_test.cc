// Unit tests for the Section 4 installed-files optimization: directory
// cover keys, periodic multicast extension, no per-client state, and the
// drop-from-multicast write path.
#include <gtest/gtest.h>

#include "src/core/sim_cluster.h"
#include "src/workload/v_config.h"

namespace leases {
namespace {

struct InstalledRig {
  std::unique_ptr<SimCluster> cluster;
  FileId dir;
  std::vector<FileId> tools;
  LeaseKey key;

  explicit InstalledRig(size_t clients = 3,
                        Duration period = Duration::Seconds(2),
                        Duration term = Duration::Seconds(10)) {
    ClusterOptions options = MakeVClusterOptions(term, clients);
    options.server.installed_optimization = true;
    options.server.installed_multicast_period = period;
    options.server.installed_term = term;
    cluster = std::make_unique<SimCluster>(options);
    for (int i = 0; i < 3; ++i) {
      tools.push_back(*cluster->store().CreatePath(
          "/usr/bin/tool" + std::to_string(i), FileClass::kInstalled,
          Bytes("bin" + std::to_string(i))));
    }
    dir = *cluster->store().Resolve("/usr/bin");
    EXPECT_TRUE(cluster->server().InstallDirectory(dir).ok());
    key = cluster->store().CoverOf(dir);
  }
};

TEST(InstalledTest, RequiresOptimizationEnabled) {
  SimCluster cluster(MakeVClusterOptions(Duration::Seconds(10), 1));
  ASSERT_TRUE(cluster.store()
                  .CreatePath("/usr/bin/x", FileClass::kInstalled, Bytes("x"))
                  .ok());
  FileId dir = *cluster.store().Resolve("/usr/bin");
  EXPECT_EQ(cluster.server().InstallDirectory(dir).code(),
            ErrorCode::kInvalidArgument);
}

TEST(InstalledTest, OneKeyCoversTheDirectory) {
  InstalledRig rig;
  for (FileId tool : rig.tools) {
    EXPECT_EQ(rig.cluster->store().CoverOf(tool), rig.key);
  }
}

TEST(InstalledTest, MulticastKeepsLeasesAliveIndefinitely) {
  InstalledRig rig;
  ASSERT_TRUE(rig.cluster->SyncRead(0, rig.tools[0]).ok());
  // Run far past the 10 s term: periodic multicasts keep renewing.
  rig.cluster->RunFor(Duration::Seconds(120));
  Result<ReadResult> r = rig.cluster->SyncRead(0, rig.tools[0]);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->from_cache);
  // The client never had to ASK for an extension.
  EXPECT_EQ(rig.cluster->client(0).stats().extend_requests, 0u);
  EXPECT_GT(rig.cluster->client(0).stats().installed_renewals, 10u);
  EXPECT_GT(rig.cluster->server().stats().installed_multicasts, 10u);
}

TEST(InstalledTest, OneRenewalCoversAllFilesUnderTheKey) {
  InstalledRig rig;
  for (FileId tool : rig.tools) {
    ASSERT_TRUE(rig.cluster->SyncRead(0, tool).ok());
  }
  rig.cluster->RunFor(Duration::Seconds(60));
  uint64_t served = rig.cluster->server().stats().reads_served;
  for (FileId tool : rig.tools) {
    Result<ReadResult> r = rig.cluster->SyncRead(0, tool);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->from_cache);
  }
  EXPECT_EQ(rig.cluster->server().stats().reads_served, served);
}

TEST(InstalledTest, NoPerClientHolderState) {
  InstalledRig rig;
  for (size_t c = 0; c < 3; ++c) {
    ASSERT_TRUE(rig.cluster->SyncRead(c, rig.tools[0]).ok());
  }
  // "This optimization also eliminates the need for the server to keep
  // track of the leaseholders for installed files."
  EXPECT_EQ(rig.cluster->server().lease_table().RecordCount(), 0u);
}

TEST(InstalledTest, WriteWaitsOutTheAdvertisedWindowNoCallbacks) {
  InstalledRig rig;
  ASSERT_TRUE(rig.cluster->SyncRead(0, rig.tools[0]).ok());
  ASSERT_TRUE(rig.cluster->SyncRead(1, rig.tools[0]).ok());
  rig.cluster->RunFor(Duration::Seconds(5));

  TimePoint start = rig.cluster->sim().Now();
  Result<WriteResult> w = rig.cluster->SyncWrite(
      2, rig.tools[0], Bytes("new"), Duration::Seconds(30));
  ASSERT_TRUE(w.ok());
  Duration waited = rig.cluster->sim().Now() - start;
  // Bounded by the advertised window (<= term), achieved with ZERO
  // approval traffic ("eliminates ... the resulting implosion of
  // responses").
  EXPECT_GT(waited, Duration::Seconds(1));
  EXPECT_LE(waited, Duration::Seconds(10) + Duration::Millis(100));
  EXPECT_EQ(rig.cluster->server().stats().approval_rounds, 0u);
  EXPECT_EQ(rig.cluster->oracle().violations(), 0u);
}

TEST(InstalledTest, KeyDroppedFromMulticastWhileWritePending) {
  InstalledRig rig;
  ASSERT_TRUE(rig.cluster->SyncRead(0, rig.tools[0]).ok());
  bool done = false;
  rig.cluster->client(2).Write(rig.tools[0], Bytes("new"),
                               [&](Result<WriteResult> r) {
                                 ASSERT_TRUE(r.ok());
                                 done = true;
                               });
  // While the write waits, client 0's lease stops being renewed: after the
  // remaining window it cannot serve locally any more.
  rig.cluster->RunFor(Duration::Seconds(11));
  EXPECT_TRUE(done);
  EXPECT_FALSE(rig.cluster->client(0).HasValidLease(rig.tools[0]));
  // After commit the key is advertised again; a fresh read re-caches and
  // multicasts keep it alive.
  Result<ReadResult> r = rig.cluster->SyncRead(0, rig.tools[0]);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Text(r->data), "new");
  rig.cluster->RunFor(Duration::Seconds(30));
  EXPECT_TRUE(rig.cluster->client(0).HasValidLease(rig.tools[0]));
}

TEST(InstalledTest, LateJoiningClientGetsRenewalsToo) {
  InstalledRig rig;
  rig.cluster->RunFor(Duration::Seconds(30));
  ASSERT_TRUE(rig.cluster->SyncRead(2, rig.tools[1]).ok());
  rig.cluster->RunFor(Duration::Seconds(60));
  Result<ReadResult> r = rig.cluster->SyncRead(2, rig.tools[1]);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->from_cache);
}

TEST(InstalledTest, ConsistencyHoldsAcrossInstalledUpdates) {
  InstalledRig rig(3, Duration::Seconds(1), Duration::Seconds(3));
  for (int round = 0; round < 5; ++round) {
    for (size_t c = 0; c < 3; ++c) {
      ASSERT_TRUE(rig.cluster->SyncRead(c, rig.tools[0]).ok());
    }
    ASSERT_TRUE(rig.cluster
                    ->SyncWrite(round % 3, rig.tools[0],
                                Bytes("v" + std::to_string(round)),
                                Duration::Seconds(30))
                    .ok());
    rig.cluster->RunFor(Duration::Seconds(2));
  }
  EXPECT_EQ(rig.cluster->oracle().violations(), 0u);
}

}  // namespace
}  // namespace leases
