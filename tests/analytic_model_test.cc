// Unit tests for the analytic model beyond the Section 3.2 calibration
// anchors: each formula's structure, limits and monotonicity.
#include <gtest/gtest.h>

#include <cmath>

#include "src/analytic/model.h"

namespace leases {
namespace {

TEST(ModelTest, EffectiveTermShorteningAndClamping) {
  LeaseModel model(SystemParams::VSystem(1));
  // t_c = t_s - (m_prop + 2 m_proc) - epsilon = t_s - 2.5ms - 100ms.
  Duration ts = Duration::Seconds(10);
  EXPECT_EQ(model.EffectiveTerm(ts),
            ts - Duration::Micros(2500) - Duration::Millis(100));
  EXPECT_EQ(model.EffectiveTerm(Duration::Millis(50)), Duration::Zero());
  EXPECT_TRUE(model.EffectiveTerm(Duration::Infinite()).IsInfinite());
}

TEST(ModelTest, ZeroTermLoadIsTwoNR) {
  SystemParams params = SystemParams::VSystem(1);
  LeaseModel model(params);
  EXPECT_DOUBLE_EQ(model.ConsistencyLoad(Duration::Zero()),
                   2 * params.clients * params.reads_per_sec);
  EXPECT_DOUBLE_EQ(model.RelativeConsistencyLoad(Duration::Zero()), 1.0);
}

TEST(ModelTest, ExtensionLoadFollowsFormula) {
  LeaseModel model(SystemParams::VSystem(1));
  Duration ts = Duration::Seconds(10);
  double tc = model.EffectiveTerm(ts).ToSeconds();
  EXPECT_NEAR(model.ExtensionLoad(ts),
              2 * 20 * 0.864 / (1 + 0.864 * tc), 1e-9);
  EXPECT_DOUBLE_EQ(model.ExtensionLoad(Duration::Infinite()), 0.0);
}

TEST(ModelTest, ApprovalLoadCases) {
  // S = 1: writer's implicit approval, no messages.
  EXPECT_DOUBLE_EQ(
      LeaseModel(SystemParams::VSystem(1)).ApprovalLoad(Duration::Seconds(5)),
      0.0);
  // t_s = 0: nobody holds a lease.
  EXPECT_DOUBLE_EQ(
      LeaseModel(SystemParams::VSystem(10)).ApprovalLoad(Duration::Zero()),
      0.0);
  // S > 1, t_s > 0: N * S * W (multicast).
  EXPECT_NEAR(LeaseModel(SystemParams::VSystem(10))
                  .ApprovalLoad(Duration::Seconds(5)),
              20 * 10 * 0.04, 1e-9);
  // Unicast: N * 2(S-1) * W.
  SystemParams unicast = SystemParams::VSystem(10);
  unicast.multicast_approvals = false;
  EXPECT_NEAR(LeaseModel(unicast).ApprovalLoad(Duration::Seconds(5)),
              20 * 18 * 0.04, 1e-9);
}

TEST(ModelTest, ApprovalTimeFormulas) {
  // Multicast: 2 m_prop + (S+2) m_proc (n = S-1 replies).
  LeaseModel s10(SystemParams::VSystem(10));
  EXPECT_EQ(s10.ApprovalTime(),
            Duration::Micros(1000) + Duration::Millis(12));
  // S = 1: no approval round at all.
  EXPECT_EQ(LeaseModel(SystemParams::VSystem(1)).ApprovalTime(),
            Duration::Zero());
}

TEST(ModelTest, LoadMonotoneDecreasingInTermForLowSharing) {
  LeaseModel model(SystemParams::VSystem(2));
  double prev = model.ConsistencyLoad(Duration::Millis(200));
  for (int t = 1; t <= 60; t += 3) {
    double load = model.ConsistencyLoad(Duration::Seconds(t));
    EXPECT_LE(load, prev + 1e-9) << "term " << t;
    prev = load;
  }
}

TEST(ModelTest, DelayDecreasesWithTermAndIncreasesWithSharing) {
  Duration ts = Duration::Seconds(10);
  double prev = 1e18;
  for (double s : {1.0, 5.0, 10.0, 40.0}) {
    double delay = LeaseModel(SystemParams::VSystem(s)).AddedDelay(ts)
                       .ToSeconds();
    if (s > 1) {
      EXPECT_GT(delay,
                LeaseModel(SystemParams::VSystem(1)).AddedDelay(ts)
                    .ToSeconds());
    }
    (void)prev;
  }
  LeaseModel model(SystemParams::VSystem(1));
  EXPECT_GT(model.AddedDelay(Duration::Zero()),
            model.AddedDelay(Duration::Seconds(10)));
  EXPECT_GT(model.AddedDelay(Duration::Seconds(10)),
            model.AddedDelay(Duration::Infinite()));
}

TEST(ModelTest, AlphaDefinitions) {
  EXPECT_NEAR(LeaseModel(SystemParams::VSystem(1)).Alpha(),
              2 * 0.864 / 0.04, 1e-9);
  EXPECT_NEAR(LeaseModel(SystemParams::VSystem(10)).Alpha(),
              2 * 0.864 / (10 * 0.04), 1e-9);
  SystemParams unicast = SystemParams::VSystem(10);
  unicast.multicast_approvals = false;
  EXPECT_NEAR(LeaseModel(unicast).Alpha(), 0.864 / (9 * 0.04), 1e-9);
  // No writes at all: alpha is infinite, break-even at zero.
  SystemParams read_only = SystemParams::VSystem(1);
  read_only.writes_per_sec = 0;
  LeaseModel ro(read_only);
  EXPECT_TRUE(std::isinf(ro.Alpha()));
  ASSERT_TRUE(ro.BreakEvenEffectiveTerm().has_value());
  EXPECT_EQ(*ro.BreakEvenEffectiveTerm(), Duration::Zero());
}

TEST(ModelTest, TotalLoadEndpoints) {
  LeaseModel model(SystemParams::VSystem(1));
  EXPECT_DOUBLE_EQ(model.RelativeTotalLoad(Duration::Zero()), 1.0);
  // At infinite term, consistency vanishes (S=1): total = 1 - share = 0.7.
  EXPECT_NEAR(model.RelativeTotalLoad(Duration::Infinite()), 0.70, 1e-9);
  EXPECT_NEAR(model.TotalLoadOverInfinite(Duration::Zero()),
              1.0 / 0.7 - 1.0, 1e-9);
}

TEST(ModelTest, WanFactoryMatchesFigure3Setup) {
  SystemParams wan = SystemParams::Wan(1);
  EXPECT_EQ((wan.m_prop * 2 + wan.m_proc * 4), Duration::Millis(100));
  LeaseModel model(wan);
  EXPECT_DOUBLE_EQ(
      model.ResponseDegradationVsInfinite(Duration::Infinite()), 0.0);
}

}  // namespace
}  // namespace leases
