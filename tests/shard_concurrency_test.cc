// The sharded grant plane under real concurrency: several RuntimeClients
// hammer a ShardedRuntimeServer over UDP, exercising the receiver-thread
// routing, the SPSC shard queues, the per-shard timer queues and the
// sendmmsg outbound batchers all at once. Run under TSan in the sanitizer
// tier (tools/run_sanitizer_tier.sh), this is the proof that the hot path
// is race-free, not merely lock-free.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/core/shard_router.h"
#include "src/runtime/node.h"
#include "src/runtime/sharded_node.h"
#include "src/runtime/udp_transport.h"

namespace leases {
namespace {

std::vector<uint8_t> B(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

ClientParams TestClientParams() {
  ClientParams p;
  p.transit_allowance = Duration::Millis(50);
  p.epsilon = Duration::Millis(50);
  p.request_timeout = Duration::Millis(300);
  return p;
}

TEST(ShardConcurrency, ClientsHammerAllShardsThroughBatchedUdp) {
  constexpr size_t kShards = 4;
  constexpr size_t kClients = 3;
  constexpr size_t kFiles = 16;
  constexpr int kRounds = 30;

  ShardedRuntimeServer server(NodeId(1), ServerParams{}, Duration::Seconds(5),
                              kShards);
  std::vector<FileId> files;
  for (size_t i = 0; i < kFiles; ++i) {
    files.push_back(*server.store().CreatePath(
        "/data/f" + std::to_string(i), FileClass::kNormal, B("seed")));
  }
  // The workload only exercises sharding if the files actually span shards.
  std::vector<bool> hit(kShards, false);
  for (FileId f : files) {
    hit[ShardIndexOf(f, kShards)] = true;
  }
  size_t shards_hit = 0;
  for (bool h : hit) {
    shards_hit += h ? 1 : 0;
  }
  ASSERT_GT(shards_hit, 1u);
  ASSERT_TRUE(server.Start().ok());

  std::vector<std::unique_ptr<RuntimeClient>> clients;
  for (size_t c = 0; c < kClients; ++c) {
    auto client = std::make_unique<RuntimeClient>(
        NodeId(2 + c), NodeId(1), server.store().root(), TestClientParams());
    ASSERT_TRUE(client->Start(server.port()).ok());
    server.AddPeer(NodeId(2 + c), client->port());
    clients.push_back(std::move(client));
  }

  // Each client thread walks the whole file set repeatedly -- every thread
  // touches every shard -- mixing cached reads, write-throughs (which fan
  // out approval traffic to the other leaseholders) and fresh reads.
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> writes_done{0};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c]() {
      RuntimeClient& client = *clients[c];
      for (int round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < kFiles; ++i) {
          FileId file = files[i];
          if ((round + i) % (kClients + 1) == c) {
            std::string payload =
                "c" + std::to_string(c) + "r" + std::to_string(round);
            Result<WriteResult> w =
                client.Write(file, B(payload), Duration::Seconds(10));
            if (!w.ok()) {
              failures.fetch_add(1, std::memory_order_relaxed);
            } else {
              writes_done.fetch_add(1, std::memory_order_relaxed);
            }
          } else {
            Result<ReadResult> r = client.Read(file, Duration::Seconds(10));
            if (!r.ok()) {
              failures.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  EXPECT_EQ(failures.load(), 0u);
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.writes_committed, writes_done.load());
  EXPECT_GT(stats.reads_served, 0u);
  EXPECT_GT(stats.leases_granted, 0u);
  EXPECT_GT(server.processed(), 0u);
  EXPECT_EQ(stats.send_failures, 0u);

  // Every client converges on the same final contents once the dust settles:
  // write-through plus approval-invalidation means a fresh read cannot
  // return a stale version.
  for (FileId file : files) {
    Result<ReadResult> first = clients[0]->Read(file, Duration::Seconds(10));
    ASSERT_TRUE(first.ok());
    for (size_t c = 1; c < kClients; ++c) {
      Result<ReadResult> other =
          clients[c]->Read(file, Duration::Seconds(10));
      ASSERT_TRUE(other.ok());
      EXPECT_EQ(other->version, first->version);
    }
  }

  for (auto& client : clients) {
    client->Stop();
  }
  server.Stop();
}

TEST(ShardConcurrency, CrossShardBatchedExtendOverUdp) {
  // Short term so the client's whole working set lapses together; the
  // batched ExtendRequest then spans shards and exercises the split/merge
  // rendezvous with real per-shard threads replying through real batchers.
  constexpr size_t kShards = 8;
  constexpr size_t kFiles = 12;

  ShardedRuntimeServer server(NodeId(1), ServerParams{},
                              Duration::Millis(800), kShards);
  std::vector<FileId> files;
  for (size_t i = 0; i < kFiles; ++i) {
    files.push_back(*server.store().CreatePath(
        "/ext/f" + std::to_string(i), FileClass::kNormal, B("x")));
  }
  ASSERT_TRUE(server.Start().ok());

  RuntimeClient client(NodeId(2), NodeId(1), server.store().root(),
                       TestClientParams());
  ASSERT_TRUE(client.Start(server.port()).ok());
  server.AddPeer(NodeId(2), client.port());

  for (FileId f : files) {
    ASSERT_TRUE(client.Read(f, Duration::Seconds(10)).ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(1000));
  // All leases lapsed: the next read triggers one batched extension over
  // every held file, split across the shards and merged back into a single
  // reply the client can consume.
  ClientStats before = client.stats();
  for (FileId f : files) {
    ASSERT_TRUE(client.Read(f, Duration::Seconds(10)).ok());
  }
  ClientStats after = client.stats();
  EXPECT_GT(after.extend_requests, before.extend_requests);
  ServerStats stats = server.stats();
  EXPECT_GT(stats.extension_items, 0u);

  client.Stop();
  server.Stop();
}

// Regression for the per-send stats mutex removal: UdpBatchSender counts
// sends into shard-local atomics and UdpTransport::stats() merges them --
// live senders by reading their counters, destroyed senders by the fold in
// UnregisterBatchCounters. N shard threads hammering their own batchers
// must yield *exact* merged totals, stats() must be safe to read mid-storm
// (this test runs under TSan in the sanitizer tier), and the merged view
// must never go backwards.
TEST(ShardConcurrency, BatchSenderStatsMergeIsExactUnderContention) {
  constexpr size_t kThreads = 8;
  constexpr int kSendsPerThreadPerClass = 2000;

  UdpTransport sink(NodeId(9), nullptr, nullptr);
  sink.SetRawHandler([](NodeId, MessageClass, std::span<const uint8_t>) {});
  ASSERT_TRUE(sink.Start().ok());
  UdpTransport transport(NodeId(10), nullptr, nullptr);
  transport.SetRawHandler([](NodeId, MessageClass, std::span<const uint8_t>) {});
  ASSERT_TRUE(transport.Start().ok());
  transport.AddPeer(NodeId(9), sink.port());

  const NodeMessageStats before = transport.stats();

  // One batcher per shard thread, all counting against the same transport.
  std::vector<std::unique_ptr<UdpBatchSender>> batchers;
  for (size_t t = 0; t < kThreads; ++t) {
    batchers.push_back(std::make_unique<UdpBatchSender>(&transport));
  }

  std::atomic<bool> done{false};
  std::atomic<uint64_t> regressions{0};
  std::thread reader([&]() {
    uint64_t prev = 0;
    while (!done.load(std::memory_order_relaxed)) {
      uint64_t now = transport.stats().TotalSent();
      if (now < prev) {
        regressions.fetch_add(1, std::memory_order_relaxed);
      }
      prev = now;
    }
  });

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      UdpBatchSender& batcher = *batchers[t];
      for (int i = 0; i < kSendsPerThreadPerClass; ++i) {
        batcher.Send(NodeId(9), MessageClass::kData, B("d"));
        batcher.Send(NodeId(9), MessageClass::kConsistency, B("c"));
      }
      batcher.Flush();
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  // Destroy half the batchers so the final merge combines folded totals
  // (transport-side) with live shard-local counters.
  for (size_t t = 0; t < kThreads; t += 2) {
    batchers[t].reset();
  }

  const NodeMessageStats after = transport.stats();
  done.store(true, std::memory_order_relaxed);
  reader.join();

  const uint64_t expected = kThreads * uint64_t{kSendsPerThreadPerClass};
  EXPECT_EQ(after.sent[static_cast<int>(MessageClass::kData)] -
                before.sent[static_cast<int>(MessageClass::kData)],
            expected);
  EXPECT_EQ(after.sent[static_cast<int>(MessageClass::kConsistency)] -
                before.sent[static_cast<int>(MessageClass::kConsistency)],
            expected);
  EXPECT_EQ(after.send_failures, before.send_failures);
  EXPECT_EQ(regressions.load(), 0u);

  batchers.clear();
  transport.Stop();
  sink.Stop();
}

}  // namespace
}  // namespace leases
