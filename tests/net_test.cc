// Unit tests for the simulated network: the paper's exact message cost
// model, loss, partitions, crash semantics and load accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/net/sim_network.h"
#include "src/sim/simulator.h"

namespace leases {
namespace {

class Recorder : public PacketHandler {
 public:
  struct Received {
    NodeId from;
    MessageClass cls;
    std::vector<uint8_t> bytes;
    TimePoint at;
  };

  explicit Recorder(Simulator* sim) : sim_(sim) {}

  void HandlePacket(NodeId from, MessageClass cls,
                    std::span<const uint8_t> bytes) override {
    received.push_back(Received{from, cls,
                                std::vector<uint8_t>(bytes.begin(),
                                                     bytes.end()),
                                sim_->Now()});
    if (reply_to_sender) {
      transport->Send(from, MessageClass::kConsistency, {0x99});
    }
  }

  Simulator* sim_;
  Transport* transport = nullptr;
  bool reply_to_sender = false;
  std::vector<Received> received;
};

struct Rig {
  Simulator sim;
  NetworkParams params;
  std::unique_ptr<SimNetwork> net;
  std::vector<std::unique_ptr<Recorder>> nodes;
  std::vector<SimTransport*> transports;

  explicit Rig(size_t n, NetworkParams p = NetworkParams{}) : params(p) {
    net = std::make_unique<SimNetwork>(&sim, p);
    for (size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<Recorder>(&sim));
      transports.push_back(
          net->AttachNode(NodeId(static_cast<uint32_t>(i + 1)),
                          nodes.back().get()));
      nodes.back()->transport = transports.back();
    }
  }
};

TEST(SimNetworkTest, UnicastDeliveryTimeIsPropPlusTwoProc) {
  // "a message is received m_prop + 2*m_proc after it is sent"
  Rig rig(2);
  rig.transports[0]->Send(NodeId(2), MessageClass::kData, {1, 2, 3});
  rig.sim.RunUntilIdle();
  ASSERT_EQ(rig.nodes[1]->received.size(), 1u);
  Duration latency = rig.nodes[1]->received[0].at - TimePoint::Epoch();
  EXPECT_EQ(latency, rig.params.prop_delay + rig.params.proc_time * 2);
  EXPECT_EQ(rig.nodes[1]->received[0].bytes, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(rig.nodes[1]->received[0].from, NodeId(1));
}

TEST(SimNetworkTest, RequestResponseCostsTwoPropFourProc) {
  // Unicast request + reply = 2*m_prop + 4*m_proc (Table 1 discussion).
  Rig rig(2);
  rig.nodes[1]->reply_to_sender = true;
  rig.transports[0]->Send(NodeId(2), MessageClass::kData, {1});
  rig.sim.RunUntilIdle();
  ASSERT_EQ(rig.nodes[0]->received.size(), 1u);
  Duration rtt = rig.nodes[0]->received[0].at - TimePoint::Epoch();
  EXPECT_EQ(rtt, rig.params.prop_delay * 2 + rig.params.proc_time * 4);
}

class MulticastCost : public ::testing::TestWithParam<int> {};

TEST_P(MulticastCost, MulticastWithNRepliesMatchesFormula) {
  // "it requires time 2*m_prop + (n+3)*m_proc to send a multicast message
  // and receive n replies" -- the replies serialize on the sender's CPU.
  int n = GetParam();
  Rig rig(static_cast<size_t>(n) + 1);
  std::vector<NodeId> dst;
  for (int i = 0; i < n; ++i) {
    rig.nodes[static_cast<size_t>(i) + 1]->reply_to_sender = true;
    dst.push_back(NodeId(static_cast<uint32_t>(i + 2)));
  }
  rig.transports[0]->Multicast(dst, MessageClass::kConsistency, {7});
  rig.sim.RunUntilIdle();
  ASSERT_EQ(rig.nodes[0]->received.size(), static_cast<size_t>(n));
  TimePoint last;
  for (const auto& msg : rig.nodes[0]->received) {
    last = std::max(last, msg.at);
  }
  Duration expected =
      rig.params.prop_delay * 2 + rig.params.proc_time * (n + 3);
  EXPECT_EQ(last - TimePoint::Epoch(), expected) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Fanout, MulticastCost,
                         ::testing::Values(1, 2, 5, 9, 19, 39));

TEST(SimNetworkTest, SenderCpuSerializesBackToBackSends) {
  Rig rig(2);
  rig.transports[0]->Send(NodeId(2), MessageClass::kData, {1});
  rig.transports[0]->Send(NodeId(2), MessageClass::kData, {2});
  rig.sim.RunUntilIdle();
  ASSERT_EQ(rig.nodes[1]->received.size(), 2u);
  Duration gap = rig.nodes[1]->received[1].at - rig.nodes[1]->received[0].at;
  // The second message waits for the sender CPU (m_proc), then the
  // receiver CPU also serializes -- net effect: one m_proc apart.
  EXPECT_EQ(gap, rig.params.proc_time);
}

TEST(SimNetworkTest, NoSelfDelivery) {
  Rig rig(2);
  NodeId self(1);
  NodeId dsts[2] = {self, NodeId(2)};
  rig.transports[0]->Multicast(dsts, MessageClass::kData, {1});
  rig.sim.RunUntilIdle();
  EXPECT_TRUE(rig.nodes[0]->received.empty());
  EXPECT_EQ(rig.nodes[1]->received.size(), 1u);
}

TEST(SimNetworkTest, LossDropsApproximatelyTheConfiguredFraction) {
  NetworkParams params;
  params.loss_prob = 0.25;
  params.seed = 42;
  Rig rig(2, params);
  const int kSends = 10000;
  for (int i = 0; i < kSends; ++i) {
    rig.transports[0]->Send(NodeId(2), MessageClass::kData, {1});
  }
  rig.sim.RunUntilIdle();
  double delivered = static_cast<double>(rig.nodes[1]->received.size());
  EXPECT_NEAR(delivered / kSends, 0.75, 0.02);
  EXPECT_EQ(rig.net->stats(NodeId(1)).dropped_loss,
            kSends - rig.nodes[1]->received.size());
}

TEST(SimNetworkTest, PartitionBlocksBothDirectionsUntilHealed) {
  Rig rig(2);
  rig.net->SetPartitioned(NodeId(1), NodeId(2), true);
  rig.transports[0]->Send(NodeId(2), MessageClass::kData, {1});
  rig.transports[1]->Send(NodeId(1), MessageClass::kData, {2});
  rig.sim.RunUntilIdle();
  EXPECT_TRUE(rig.nodes[0]->received.empty());
  EXPECT_TRUE(rig.nodes[1]->received.empty());
  EXPECT_EQ(rig.net->stats(NodeId(1)).dropped_partition, 1u);

  rig.net->SetPartitioned(NodeId(1), NodeId(2), false);
  rig.transports[0]->Send(NodeId(2), MessageClass::kData, {3});
  rig.sim.RunUntilIdle();
  EXPECT_EQ(rig.nodes[1]->received.size(), 1u);
}

TEST(SimNetworkTest, IsolateNodeCutsAllPairs) {
  Rig rig(3);
  rig.net->IsolateNode(NodeId(2), true);
  EXPECT_TRUE(rig.net->ArePartitioned(NodeId(1), NodeId(2)));
  EXPECT_TRUE(rig.net->ArePartitioned(NodeId(2), NodeId(3)));
  EXPECT_FALSE(rig.net->ArePartitioned(NodeId(1), NodeId(3)));
  rig.net->IsolateNode(NodeId(2), false);
  EXPECT_FALSE(rig.net->ArePartitioned(NodeId(1), NodeId(2)));
}

TEST(SimNetworkTest, DownNodeReceivesNothing) {
  Rig rig(2);
  rig.net->SetNodeUp(NodeId(2), false);
  rig.transports[0]->Send(NodeId(2), MessageClass::kData, {1});
  rig.sim.RunUntilIdle();
  EXPECT_TRUE(rig.nodes[1]->received.empty());
  rig.net->SetNodeUp(NodeId(2), true);
  rig.transports[0]->Send(NodeId(2), MessageClass::kData, {2});
  rig.sim.RunUntilIdle();
  ASSERT_EQ(rig.nodes[1]->received.size(), 1u);
  EXPECT_EQ(rig.nodes[1]->received[0].bytes[0], 2);
}

TEST(SimNetworkTest, MessagesInFlightAtCrashAreLost) {
  Rig rig(2);
  rig.transports[0]->Send(NodeId(2), MessageClass::kData, {1});
  // Crash strictly between send and delivery.
  rig.sim.ScheduleAfter(Duration::Micros(100), [&]() {
    rig.net->SetNodeUp(NodeId(2), false);
  });
  rig.sim.ScheduleAfter(Duration::Millis(10), [&]() {
    rig.net->SetNodeUp(NodeId(2), true);
  });
  rig.sim.RunUntilIdle();
  EXPECT_TRUE(rig.nodes[1]->received.empty());
}

TEST(SimNetworkTest, DownSenderCannotSend) {
  Rig rig(2);
  rig.net->SetNodeUp(NodeId(1), false);
  rig.transports[0]->Send(NodeId(2), MessageClass::kData, {1});
  rig.sim.RunUntilIdle();
  EXPECT_TRUE(rig.nodes[1]->received.empty());
  EXPECT_EQ(rig.net->stats(NodeId(1)).TotalSent(), 0u);
}

TEST(SimNetworkTest, ReplaceHandlerDropsOldInFlight) {
  Rig rig(2);
  rig.transports[0]->Send(NodeId(2), MessageClass::kData, {1});
  Recorder fresh(&rig.sim);
  rig.net->ReplaceHandler(NodeId(2), &fresh);
  rig.sim.RunUntilIdle();
  // The in-flight message belonged to the old incarnation.
  EXPECT_TRUE(rig.nodes[1]->received.empty());
  EXPECT_TRUE(fresh.received.empty());
  rig.transports[0]->Send(NodeId(2), MessageClass::kData, {2});
  rig.sim.RunUntilIdle();
  EXPECT_EQ(fresh.received.size(), 1u);
}

TEST(SimNetworkTest, StatsCountHandledByClassAndMulticastOnce) {
  Rig rig(3);
  std::vector<NodeId> dst = {NodeId(2), NodeId(3)};
  rig.transports[0]->Multicast(dst, MessageClass::kConsistency, {1});
  rig.transports[0]->Send(NodeId(2), MessageClass::kData, {2});
  rig.sim.RunUntilIdle();
  const NodeMessageStats& sender = rig.net->stats(NodeId(1));
  // One multicast counts as ONE sent message (the paper's "total of S
  // messages" accounting), plus the unicast.
  EXPECT_EQ(sender.sent[static_cast<int>(MessageClass::kConsistency)], 1u);
  EXPECT_EQ(sender.sent[static_cast<int>(MessageClass::kData)], 1u);
  EXPECT_EQ(sender.Handled(), 2u);
  EXPECT_EQ(rig.net->stats(NodeId(2)).TotalReceived(), 2u);
  EXPECT_EQ(rig.net->stats(NodeId(3)).TotalReceived(), 1u);
  EXPECT_EQ(rig.net->TotalHandled(), 5u);
  rig.net->ResetStats();
  EXPECT_EQ(rig.net->TotalHandled(), 0u);
}

// --- Typed fast path ------------------------------------------------------

class TypedRecorder : public PacketHandler {
 public:
  struct Received {
    NodeId from;
    MessageClass cls;
    Packet packet;
    TimePoint at;
  };

  explicit TypedRecorder(Simulator* sim) : sim_(sim) {}

  void HandlePacket(NodeId from, MessageClass cls,
                    std::span<const uint8_t> bytes) override {
    ++byte_deliveries;
    last_bytes.assign(bytes.begin(), bytes.end());
    last_from = from;
    last_cls = cls;
  }

  void HandleTyped(NodeId from, MessageClass cls,
                   const Packet& packet) override {
    received.push_back(Received{from, cls, packet, sim_->Now()});
    if (reply_to_sender) {
      transport->Send(from, MessageClass::kConsistency,
                      Packet(Pong{RequestId(1)}));
    }
  }

  Simulator* sim_;
  Transport* transport = nullptr;
  bool reply_to_sender = false;
  std::vector<Received> received;
  size_t byte_deliveries = 0;
  std::vector<uint8_t> last_bytes;
  NodeId last_from;
  MessageClass last_cls = MessageClass::kControl;
};

struct TypedRig {
  Simulator sim;
  NetworkParams params;
  std::unique_ptr<SimNetwork> net;
  std::vector<std::unique_ptr<TypedRecorder>> nodes;
  std::vector<SimTransport*> transports;

  explicit TypedRig(size_t n, NetworkParams p = NetworkParams{}) : params(p) {
    net = std::make_unique<SimNetwork>(&sim, p);
    for (size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<TypedRecorder>(&sim));
      transports.push_back(
          net->AttachNode(NodeId(static_cast<uint32_t>(i + 1)),
                          nodes.back().get()));
      nodes.back()->transport = transports.back();
    }
  }
};

Packet SamplePacket() {
  ReadReply m;
  m.req = RequestId(42);
  m.file = FileId(7);
  m.version = 3;
  m.lease = LeaseGrant{LeaseKey(7), Duration::Seconds(10)};
  m.data = {9, 8, 7, 6};
  return m;
}

TEST(SimNetworkTypedTest, TypedUnicastKeepsTheCostModelAndPayload) {
  TypedRig rig(2);
  rig.transports[0]->Send(NodeId(2), MessageClass::kData, SamplePacket());
  rig.sim.RunUntilIdle();
  ASSERT_EQ(rig.nodes[1]->received.size(), 1u);
  EXPECT_EQ(rig.nodes[1]->byte_deliveries, 0u);  // no decode happened
  const auto& got = rig.nodes[1]->received[0];
  EXPECT_EQ(got.at - TimePoint::Epoch(),
            rig.params.prop_delay + rig.params.proc_time * 2);
  EXPECT_EQ(got.from, NodeId(1));
  const auto* reply = std::get_if<ReadReply>(&got.packet);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->data, (std::vector<uint8_t>{9, 8, 7, 6}));
}

TEST(SimNetworkTypedTest, TypedMulticastWithRepliesMatchesFormula) {
  const int n = 5;
  TypedRig rig(n + 1);
  std::vector<NodeId> dst;
  for (int i = 0; i < n; ++i) {
    rig.nodes[static_cast<size_t>(i) + 1]->reply_to_sender = true;
    dst.push_back(NodeId(static_cast<uint32_t>(i + 2)));
  }
  rig.transports[0]->Multicast(dst, MessageClass::kConsistency,
                               Packet(Ping{RequestId(1)}));
  rig.sim.RunUntilIdle();
  ASSERT_EQ(rig.nodes[0]->received.size(), static_cast<size_t>(n));
  TimePoint last;
  for (const auto& msg : rig.nodes[0]->received) {
    last = std::max(last, msg.at);
  }
  EXPECT_EQ(last - TimePoint::Epoch(),
            rig.params.prop_delay * 2 + rig.params.proc_time * (n + 3));
}

TEST(SimNetworkTypedTest, ByteOnlyHandlerGetsWireBytesFromTypedSend) {
  // A handler that never overrides HandleTyped must observe exactly what
  // the wire would have carried.
  Simulator sim;
  SimNetwork net(&sim, NetworkParams{});
  Recorder byte_node(&sim);
  TypedRecorder typed_node(&sim);
  net.AttachNode(NodeId(1), &typed_node);
  SimTransport* t1 = net.AttachNode(NodeId(2), &byte_node);
  (void)t1;
  SimTransport* t0 = net.AttachNode(NodeId(3), &typed_node);
  Packet packet = SamplePacket();
  t0->Send(NodeId(2), MessageClass::kData, Packet(packet));
  sim.RunUntilIdle();
  ASSERT_EQ(byte_node.received.size(), 1u);
  EXPECT_EQ(byte_node.received[0].bytes, EncodePacket(packet));
}

TEST(SimNetworkTypedTest, TracerSeesWireBytesLazily) {
  TypedRig rig(3);
  std::vector<std::vector<uint8_t>> taps;
  rig.net->set_tracer([&](NodeId src, NodeId dst, MessageClass cls,
                          std::span<const uint8_t> bytes) {
    (void)src;
    (void)dst;
    (void)cls;
    taps.emplace_back(bytes.begin(), bytes.end());
  });
  // Tracer fires per destination, even for a partitioned one, exactly like
  // the byte path.
  rig.net->SetPartitioned(NodeId(1), NodeId(3), true);
  Packet packet = SamplePacket();
  std::vector<NodeId> dst = {NodeId(2), NodeId(3)};
  rig.transports[0]->Multicast(dst, MessageClass::kData, Packet(packet));
  rig.sim.RunUntilIdle();
  ASSERT_EQ(taps.size(), 2u);
  EXPECT_EQ(taps[0], EncodePacket(packet));
  EXPECT_EQ(taps[1], EncodePacket(packet));
  ASSERT_EQ(rig.nodes[1]->received.size(), 1u);
  EXPECT_TRUE(rig.nodes[2]->received.empty());
}

TEST(SimNetworkTypedTest, ForceWireRoutesTypedSendsThroughTheCodec) {
  TypedRig rig(2);
  rig.net->set_force_wire(true);
  Packet packet = SamplePacket();
  rig.transports[0]->Send(NodeId(2), MessageClass::kData, Packet(packet));
  rig.sim.RunUntilIdle();
  // Delivered via HandlePacket (the byte entry point), not HandleTyped.
  EXPECT_TRUE(rig.nodes[1]->received.empty());
  ASSERT_EQ(rig.nodes[1]->byte_deliveries, 1u);
  EXPECT_EQ(rig.nodes[1]->last_bytes, EncodePacket(packet));
}

TEST(SimNetworkTypedTest, ConformanceModeDeliversTheDecodedPacket) {
  TypedRig rig(2);
  rig.net->set_codec_conformance(true);
  Packet packet = SamplePacket();
  rig.transports[0]->Send(NodeId(2), MessageClass::kData, Packet(packet));
  rig.sim.RunUntilIdle();
  ASSERT_EQ(rig.nodes[1]->received.size(), 1u);
  EXPECT_EQ(rig.nodes[1]->byte_deliveries, 0u);
  EXPECT_EQ(EncodePacket(rig.nodes[1]->received[0].packet),
            EncodePacket(packet));
}

TEST(SimNetworkTypedTest, TypedInFlightAtCrashIsDroppedAndRecycled) {
  TypedRig rig(2);
  rig.transports[0]->Send(NodeId(2), MessageClass::kData, SamplePacket());
  rig.sim.ScheduleAfter(Duration::Micros(100), [&]() {
    rig.net->SetNodeUp(NodeId(2), false);
  });
  rig.sim.RunUntilIdle();
  EXPECT_TRUE(rig.nodes[1]->received.empty());
  // The pooled message must have been released: a follow-up send after
  // restart reuses it and still delivers correctly.
  rig.net->SetNodeUp(NodeId(2), true);
  rig.transports[0]->Send(NodeId(2), MessageClass::kData,
                          Packet(Ping{RequestId(5)}));
  rig.sim.RunUntilIdle();
  ASSERT_EQ(rig.nodes[1]->received.size(), 1u);
  EXPECT_NE(std::get_if<Ping>(&rig.nodes[1]->received[0].packet), nullptr);
}

TEST(SimNetworkTypedTest, TypedStatsMatchBytePathAccounting) {
  TypedRig rig(3);
  std::vector<NodeId> dst = {NodeId(2), NodeId(3)};
  rig.transports[0]->Multicast(dst, MessageClass::kConsistency,
                               Packet(Ping{RequestId(1)}));
  rig.transports[0]->Send(NodeId(2), MessageClass::kData, SamplePacket());
  rig.sim.RunUntilIdle();
  const NodeMessageStats& sender = rig.net->stats(NodeId(1));
  EXPECT_EQ(sender.sent[static_cast<int>(MessageClass::kConsistency)], 1u);
  EXPECT_EQ(sender.sent[static_cast<int>(MessageClass::kData)], 1u);
  EXPECT_EQ(rig.net->stats(NodeId(2)).TotalReceived(), 2u);
  EXPECT_EQ(rig.net->stats(NodeId(3)).TotalReceived(), 1u);
}

// --- Multicast vs. restart / handler replacement --------------------------

TEST(SimNetworkTest, MulticastReplaceHandlerOrphansOnlyThatDestination) {
  Rig rig(3);
  std::vector<NodeId> dst = {NodeId(2), NodeId(3)};
  rig.transports[0]->Multicast(dst, MessageClass::kConsistency, {5});
  Recorder fresh(&rig.sim);
  rig.net->ReplaceHandler(NodeId(2), &fresh);
  rig.sim.RunUntilIdle();
  // Node 2's copy belonged to the old incarnation; node 3's still lands.
  EXPECT_TRUE(rig.nodes[1]->received.empty());
  EXPECT_TRUE(fresh.received.empty());
  ASSERT_EQ(rig.nodes[2]->received.size(), 1u);
  EXPECT_EQ(rig.nodes[2]->received[0].bytes, (std::vector<uint8_t>{5}));
}

TEST(SimNetworkTypedTest, TypedMulticastReplaceHandlerOrphansOldEpoch) {
  TypedRig rig(3);
  std::vector<NodeId> dst = {NodeId(2), NodeId(3)};
  rig.transports[0]->Multicast(dst, MessageClass::kConsistency,
                               Packet(Ping{RequestId(9)}));
  TypedRecorder fresh(&rig.sim);
  rig.net->ReplaceHandler(NodeId(2), &fresh);
  rig.sim.RunUntilIdle();
  EXPECT_TRUE(rig.nodes[1]->received.empty());
  EXPECT_TRUE(fresh.received.empty());
  ASSERT_EQ(rig.nodes[2]->received.size(), 1u);
  // Another typed send reaches the replaced handler; the shared in-flight
  // message from before was released cleanly (no leak under asan).
  rig.transports[0]->Send(NodeId(2), MessageClass::kData,
                          Packet(Ping{RequestId(10)}));
  rig.sim.RunUntilIdle();
  ASSERT_EQ(fresh.received.size(), 1u);
}

TEST(SimNetworkTypedTest, TypedMulticastCrashMidFlightOrphansOldEpoch) {
  TypedRig rig(3);
  std::vector<NodeId> dst = {NodeId(2), NodeId(3)};
  rig.transports[0]->Multicast(dst, MessageClass::kData,
                               Packet(Ping{RequestId(3)}));
  rig.net->SetNodeUp(NodeId(2), false);
  rig.net->SetNodeUp(NodeId(2), true);  // restart bumps the epoch
  rig.sim.RunUntilIdle();
  // The restarted incarnation must not see the pre-crash delivery.
  EXPECT_TRUE(rig.nodes[1]->received.empty());
  ASSERT_EQ(rig.nodes[2]->received.size(), 1u);
}

// --- Fault plane: duplication, reorder jitter, burst loss -----------------

TEST(SimNetworkFaultTest, DuplicationDeliversAnExtraCopy) {
  NetworkParams params;
  params.faults.dup_prob = 1.0;
  Rig rig(2, params);
  for (uint8_t i = 0; i < 5; ++i) {
    rig.transports[0]->Send(NodeId(2), MessageClass::kData, {i});
  }
  rig.sim.RunUntilIdle();
  EXPECT_EQ(rig.nodes[1]->received.size(), 10u);
  EXPECT_EQ(rig.net->stats(NodeId(1)).duplicated, 5u);
}

TEST(SimNetworkFaultTest, TypedDuplicationMatchesBytePath) {
  NetworkParams params;
  params.faults.dup_prob = 1.0;
  TypedRig rig(2, params);
  for (int i = 0; i < 5; ++i) {
    rig.transports[0]->Send(NodeId(2), MessageClass::kData,
                            Packet(Ping{RequestId(i + 1)}));
  }
  rig.sim.RunUntilIdle();
  EXPECT_EQ(rig.nodes[1]->received.size(), 10u);
  EXPECT_EQ(rig.net->stats(NodeId(1)).duplicated, 5u);
}

TEST(SimNetworkFaultTest, ReorderJitterDelaysButDelivers) {
  NetworkParams params;
  params.faults.reorder_prob = 1.0;
  params.faults.reorder_delay_max = Duration::Millis(5);
  Rig rig(2, params);
  rig.transports[0]->Send(NodeId(2), MessageClass::kData, {1});
  rig.sim.RunUntilIdle();
  ASSERT_EQ(rig.nodes[1]->received.size(), 1u);
  Duration base = params.prop_delay + params.proc_time * 2;
  Duration latency = rig.nodes[1]->received[0].at - TimePoint::Epoch();
  EXPECT_GT(latency, base);
  EXPECT_LE(latency, base + params.faults.reorder_delay_max);
  EXPECT_EQ(rig.net->stats(NodeId(1)).delayed, 1u);
}

TEST(SimNetworkFaultTest, BurstLossDropsWhileChainIsBad) {
  NetworkParams params;
  params.faults.burst_enter_prob = 1.0;  // enter the bad state immediately
  params.faults.burst_exit_prob = 0.0;   // and never leave it
  params.faults.burst_loss_prob = 1.0;
  Rig rig(2, params);
  for (uint8_t i = 0; i < 8; ++i) {
    rig.transports[0]->Send(NodeId(2), MessageClass::kData, {i});
  }
  rig.sim.RunUntilIdle();
  EXPECT_TRUE(rig.nodes[1]->received.empty());
  EXPECT_EQ(rig.net->stats(NodeId(1)).dropped_burst, 8u);
}

TEST(SimNetworkFaultTest, FaultStreamLeavesLossDrawsUntouched) {
  // The whole point of the dedicated fault RNG: enabling a fault must not
  // perturb which messages the independent-loss stream drops. Jitter-only
  // faults neither add nor remove deliveries, so the delivered payload set
  // must be identical with the fault plane on and off.
  auto delivered = [](bool faults_on) {
    NetworkParams params;
    params.seed = 9;
    params.loss_prob = 0.3;
    if (faults_on) {
      params.faults.reorder_prob = 1.0;
      params.faults.reorder_delay_max = Duration::Millis(2);
    }
    Rig rig(2, params);
    for (uint8_t i = 0; i < 50; ++i) {
      rig.transports[0]->Send(NodeId(2), MessageClass::kData, {i});
    }
    rig.sim.RunUntilIdle();
    std::vector<uint8_t> ids;
    for (const auto& r : rig.nodes[1]->received) {
      ids.push_back(r.bytes[0]);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  std::vector<uint8_t> base = delivered(false);
  EXPECT_GT(base.size(), 0u);
  EXPECT_LT(base.size(), 50u);  // some losses, or the test proves nothing
  EXPECT_EQ(base, delivered(true));
}

}  // namespace
}  // namespace leases
