// Section 5 of the paper: "consistency is maintained in spite of message
// loss (including partition), and client or server failures", failures cost
// performance only, and the effect is bounded by the lease term. Clock
// failures are two-sided: a fast server clock or slow client clock CAN break
// consistency; the opposite errors only generate extra traffic. Every claim
// is exercised here, including the negative ones.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/core/sim_cluster.h"
#include "src/workload/v_config.h"

namespace leases {
namespace {

FileId MakeFile(SimCluster& cluster, const std::string& path,
                const std::string& data) {
  Result<FileId> file =
      cluster.store().CreatePath(path, FileClass::kNormal, Bytes(data));
  EXPECT_TRUE(file.ok());
  return *file;
}

TEST(FaultTolerance, ClientCrashDelaysWriteAtMostOneTerm) {
  SimCluster cluster(MakeVClusterOptions(Duration::Seconds(10), 2));
  FileId file = MakeFile(cluster, "/f", "v1");
  ASSERT_TRUE(cluster.SyncRead(1, file).ok());
  cluster.RunFor(Duration::Seconds(3));
  cluster.CrashClient(1);

  TimePoint start = cluster.sim().Now();
  Result<WriteResult> w = cluster.SyncWrite(0, file, Bytes("v2"));
  ASSERT_TRUE(w.ok());
  Duration waited = cluster.sim().Now() - start;
  // The holder's lease had ~7 s to run; the write waits that out, no more.
  EXPECT_GT(waited, Duration::Seconds(6));
  EXPECT_LT(waited, Duration::Seconds(8));
  EXPECT_EQ(cluster.server().stats().writes_expired_commit, 1u);
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(FaultTolerance, CrashedClientRestartsWithColdCache) {
  SimCluster cluster(MakeVClusterOptions(Duration::Seconds(10), 2));
  FileId file = MakeFile(cluster, "/f", "v1");
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  cluster.CrashClient(0);
  cluster.RunFor(Duration::Seconds(1));
  cluster.RestartClient(0);
  Result<ReadResult> r = cluster.SyncRead(0, file);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->from_cache);
  EXPECT_EQ(Text(r->data), "v1");
}

TEST(FaultTolerance, PartitionHealsWithoutInconsistency) {
  SimCluster cluster(MakeVClusterOptions(Duration::Seconds(10), 3));
  FileId file = MakeFile(cluster, "/f", "v1");
  ASSERT_TRUE(cluster.SyncRead(1, file).ok());
  cluster.PartitionClient(1, true);

  // Write must wait out the partitioned holder's lease.
  ASSERT_TRUE(cluster.SyncWrite(0, file, Bytes("v2")).ok());
  EXPECT_EQ(cluster.server().stats().writes_expired_commit, 1u);

  cluster.PartitionClient(1, false);
  // The healed client's lease has long expired; it revalidates and sees v2.
  Result<ReadResult> r = cluster.SyncRead(1, file);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Text(r->data), "v2");
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(FaultTolerance, PartitionedHolderNeverServesStaleAfterExpiry) {
  SimCluster cluster(MakeVClusterOptions(Duration::Seconds(10), 2));
  FileId file = MakeFile(cluster, "/f", "v1");
  ASSERT_TRUE(cluster.SyncRead(1, file).ok());
  cluster.PartitionClient(1, true);
  ASSERT_TRUE(cluster.SyncWrite(0, file, Bytes("v2")).ok());

  // Still partitioned: reads from cache fail over to extension, which times
  // out -- but they NEVER return the stale v1, because the client-side term
  // t_c expired before the server committed.
  Result<ReadResult> r =
      cluster.SyncRead(1, file, /*timeout=*/Duration::Seconds(60));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kTimeout);
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(FaultTolerance, ServerCrashRecoveryHoldsWritesForMaxTerm) {
  SimCluster cluster(MakeVClusterOptions(Duration::Seconds(10), 2));
  FileId file = MakeFile(cluster, "/f", "v1");
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());  // lease out there
  cluster.RunFor(Duration::Seconds(1));
  cluster.CrashServer();
  cluster.RunFor(Duration::Seconds(1));
  cluster.RestartServer();
  EXPECT_TRUE(cluster.server().InRecovery());
  EXPECT_EQ(cluster.server().stats().recovery_window, Duration::Seconds(10));

  // A write right after restart is held until the recovery window drains --
  // the lease table was volatile, so the server must assume the maximum
  // granted term is still outstanding.
  TimePoint start = cluster.sim().Now();
  Result<WriteResult> w =
      cluster.SyncWrite(1, file, Bytes("v2"), Duration::Seconds(30));
  ASSERT_TRUE(w.ok());
  Duration waited = cluster.sim().Now() - start;
  EXPECT_GT(waited, Duration::Seconds(9));
  EXPECT_LT(waited, Duration::Seconds(11));
  EXPECT_EQ(cluster.server().stats().recovery_held_writes, 1u);
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(FaultTolerance, CommittedWritesSurviveServerCrash) {
  SimCluster cluster(MakeVClusterOptions(Duration::Seconds(10), 2));
  FileId file = MakeFile(cluster, "/f", "v1");
  ASSERT_TRUE(cluster.SyncWrite(0, file, Bytes("v2")).ok());
  cluster.CrashServer();
  cluster.RunFor(Duration::Seconds(1));
  cluster.RestartServer();
  // Write-through: the acknowledged write is durable across the crash.
  Result<ReadResult> r =
      cluster.SyncRead(1, file, Duration::Seconds(60));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Text(r->data), "v2");
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(FaultTolerance, ReadsNeedNoRecoveryWait) {
  SimCluster cluster(MakeVClusterOptions(Duration::Seconds(10), 2));
  FileId file = MakeFile(cluster, "/f", "v1");
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  cluster.CrashServer();
  cluster.RestartServer();
  TimePoint start = cluster.sim().Now();
  Result<ReadResult> r = cluster.SyncRead(1, file);
  ASSERT_TRUE(r.ok());
  // Reads are served immediately during recovery; only writes wait.
  EXPECT_LT(cluster.sim().Now() - start, Duration::Millis(100));
}

TEST(FaultTolerance, ApprovalRetransmissionSurvivesLostCallback) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 2);
  SimCluster cluster(options);
  FileId file = MakeFile(cluster, "/f", "v1");
  ASSERT_TRUE(cluster.SyncRead(1, file).ok());
  // Lose many messages; approval re-multicast recovers well before expiry.
  cluster.network().set_loss_prob(0.4);
  TimePoint start = cluster.sim().Now();
  Result<WriteResult> w =
      cluster.SyncWrite(0, file, Bytes("v2"), Duration::Seconds(60));
  ASSERT_TRUE(w.ok());
  // Not instant (a retry interval or two) but far less than the lease term
  // in expectation; allow up to the term as the hard bound.
  EXPECT_LT(cluster.sim().Now() - start, Duration::Seconds(11));
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

// --- Clock failures (two-sided, Section 5) ---

TEST(ClockFailure, FastServerClockCanViolateConsistency) {
  // "a server clock that advances too quickly can cause errors because it
  // may allow a write before the term of a lease held by a previous client
  // has expired at that client."
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 2);
  options.server_clock = ClockModel::Drifting(1.5);  // way beyond epsilon
  SimCluster cluster(options);
  FileId file = MakeFile(cluster, "/f", "v1");
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  // True time 8 s: server (fast) believes the 10 s lease expired at ~6.7 s.
  cluster.RunFor(Duration::Seconds(8));
  ASSERT_TRUE(cluster.SyncWrite(1, file, Bytes("v2")).ok());
  EXPECT_EQ(cluster.server().stats().approval_rounds, 0u);  // skipped holder!
  Result<ReadResult> r = cluster.SyncRead(0, file);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Text(r->data), "v1");  // stale, from the still-"valid" lease
  EXPECT_GT(cluster.oracle().violations(), 0u);
}

TEST(ClockFailure, SlowClientClockCanViolateConsistency) {
  // "if a client clock fails by advancing too slowly, it may continue using
  // a lease which the server regards as having expired."
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 2);
  options.client_clocks = {ClockModel::Drifting(0.5)};
  SimCluster cluster(options);
  FileId file = MakeFile(cluster, "/f", "v1");
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  // True 12 s: server correctly sees the lease expired; the slow client
  // (local ~6 s) still trusts it.
  cluster.RunFor(Duration::Seconds(12));
  ASSERT_TRUE(cluster.SyncWrite(1, file, Bytes("v2")).ok());
  Result<ReadResult> r = cluster.SyncRead(0, file);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Text(r->data), "v1");
  EXPECT_GT(cluster.oracle().violations(), 0u);
}

TEST(ClockFailure, SlowServerClockIsSafeJustSlower) {
  // "The opposite errors ... do not result in inconsistencies, but do
  // generate extra traffic."
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 2);
  options.server_clock = ClockModel::Drifting(0.8);  // slow server
  SimCluster cluster(options);
  FileId file = MakeFile(cluster, "/f", "v1");
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  cluster.CrashClient(0);
  TimePoint start = cluster.sim().Now();
  ASSERT_TRUE(cluster.SyncWrite(1, file, Bytes("v2"),
                                Duration::Seconds(60))
                  .ok());
  // The 10 s lease lasts 12.5 s of true time on the slow server's clock:
  // slower, never inconsistent.
  EXPECT_GT(cluster.sim().Now() - start, Duration::Seconds(11));
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(ClockFailure, FastClientClockIsSafeJustChattier) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 2);
  options.client_clocks = {ClockModel::Drifting(1.5)};  // fast client
  SimCluster cluster(options);
  FileId file = MakeFile(cluster, "/f", "v1");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.SyncRead(0, file).ok());
    cluster.RunFor(Duration::Seconds(8));
    ASSERT_TRUE(cluster.SyncWrite(1, file, Bytes(std::to_string(i))).ok());
  }
  // The fast client re-extends more often than a perfect clock would
  // (its local 9.9 s validity spans only 6.6 s of true time)...
  EXPECT_GT(cluster.client(0).stats().extend_requests +
                cluster.client(0).stats().remote_fetches,
            9u);
  // ...but never serves stale data.
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(ClockFailure, DriftWithinEpsilonIsAlwaysSafe) {
  // The correctness condition: |rate - 1| * term <= epsilon. 0.5% drift
  // over a 10 s term is 50 ms, within the 100 ms allowance.
  for (double rate : {0.995, 1.005}) {
    ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 2);
    options.client_clocks = {ClockModel::Drifting(rate)};
    options.server_clock = ClockModel::Drifting(2.0 - rate);
    SimCluster cluster(options);
    FileId file = MakeFile(cluster, "/f", "v1");
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(cluster.SyncRead(0, file).ok());
      cluster.RunFor(Duration::Seconds(9));
      ASSERT_TRUE(cluster.SyncWrite(1, file, Bytes(std::to_string(i))).ok());
      Result<ReadResult> r = cluster.SyncRead(0, file);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(Text(r->data), std::to_string(i));
    }
    EXPECT_EQ(cluster.oracle().violations(), 0u) << "rate " << rate;
  }
}

TEST(ClockFailure, ConstantSkewCancelsWithDurationTerms) {
  // Terms ship as durations, so a large constant offset between clocks is
  // harmless -- only drift matters (Section 5: terms "communicated as a
  // duration"; only bounded drift is required).
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 2);
  options.client_clocks = {ClockModel::Skewed(Duration::Seconds(3600))};
  options.server_clock = ClockModel::Skewed(-Duration::Seconds(3600));
  SimCluster cluster(options);
  FileId file = MakeFile(cluster, "/f", "v1");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.SyncRead(0, file).ok());
    ASSERT_TRUE(cluster.SyncWrite(1, file, Bytes(std::to_string(i))).ok());
    cluster.RunFor(Duration::Seconds(5));
  }
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

}  // namespace
}  // namespace leases
