// Replicated lease authority: failover correctness and the single-replica
// differential.
//
// The load-bearing pins:
//   * a 1-replica ReplicatedLeaseAuthority is behaviorally identical to the
//     plain server (same stats, same file bytes, same oracle verdicts) over
//     a seeded workload that includes a crash/restart cycle;
//   * a holder crash fails over to a standby far faster than the plain
//     server's max-granted-term recovery wait, with zero oracle violations
//     even with writes in flight and drifting replica clocks.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/sim_cluster.h"
#include "src/workload/chaos_harness.h"
#include "src/workload/v_config.h"

namespace leases {
namespace {

ClusterOptions ReplicatedOptions(size_t num_replicas, size_t num_clients = 3,
                                 uint64_t seed = 1) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10),
                                               num_clients, seed);
  options.replica.num_replicas = num_replicas;
  return options;
}

// Runs one deterministic scripted workload (with a mid-script server
// crash/restart) and returns the cluster for inspection.
struct ScriptResult {
  ServerStats stats;
  uint64_t violations = 0;
  std::vector<std::string> contents;
  size_t failed_ops = 0;
};

ScriptResult RunScript(ClusterOptions options) {
  SimCluster cluster(options);
  std::vector<FileId> files;
  for (int i = 0; i < 4; ++i) {
    files.push_back(*cluster.store().CreatePath(
        "/f" + std::to_string(i), FileClass::kNormal, Bytes("v0")));
  }
  ScriptResult out;
  auto track = [&out](bool ok) { out.failed_ops += ok ? 0 : 1; };
  for (FileId f : files) {
    track(cluster.SyncRead(0, f).ok());
    track(cluster.SyncRead(1, f).ok());
  }
  track(cluster.SyncWrite(1, files[0], Bytes("a")).ok());
  track(cluster.SyncWrite(2, files[1], Bytes("b")).ok());
  cluster.RunFor(Duration::Seconds(2));
  cluster.CrashServer();
  cluster.RunFor(Duration::Seconds(1));
  cluster.RestartServer();
  // The restarted server holds writes for the recovery window; generous
  // timeouts ride it out.
  track(cluster.SyncWrite(0, files[2], Bytes("c")).ok());
  for (FileId f : files) {
    track(cluster.SyncRead(2, f).ok());
  }
  track(cluster.SyncWrite(1, files[3], Bytes("d")).ok());
  cluster.RunFor(Duration::Seconds(2));
  out.stats = cluster.server_stats();
  out.violations = cluster.oracle().violations();
  for (FileId f : files) {
    out.contents.push_back(Text(cluster.store().Find(f)->data));
  }
  return out;
}

// --- Single-replica differential -------------------------------------

TEST(ReplicaDifferentialTest, OneReplicaMatchesPlainServerExactly) {
  ClusterOptions plain = MakeVClusterOptions(Duration::Seconds(10), 3, 1);
  ScriptResult a = RunScript(plain);
  ScriptResult b = RunScript(ReplicatedOptions(1));

  EXPECT_EQ(a.violations, 0u);
  EXPECT_EQ(b.violations, 0u);
  EXPECT_EQ(a.failed_ops, b.failed_ops);
  EXPECT_EQ(a.contents, b.contents);

  // The full protocol-counter surface must match: the shell adds no
  // traffic, no capping, no authority rounds.
  EXPECT_EQ(a.stats.reads_served, b.stats.reads_served);
  EXPECT_EQ(a.stats.not_modified_replies, b.stats.not_modified_replies);
  EXPECT_EQ(a.stats.extension_requests, b.stats.extension_requests);
  EXPECT_EQ(a.stats.leases_granted, b.stats.leases_granted);
  EXPECT_EQ(a.stats.writes_received, b.stats.writes_received);
  EXPECT_EQ(a.stats.writes_committed, b.stats.writes_committed);
  EXPECT_EQ(a.stats.writes_deferred, b.stats.writes_deferred);
  EXPECT_EQ(a.stats.write_wait_total.ToMicros(),
            b.stats.write_wait_total.ToMicros());
  EXPECT_EQ(a.stats.approval_rounds, b.stats.approval_rounds);
  EXPECT_EQ(a.stats.relinquishes, b.stats.relinquishes);
  EXPECT_EQ(a.stats.recovery_held_writes, b.stats.recovery_held_writes);
  EXPECT_EQ(a.stats.recovery_window.ToMicros(),
            b.stats.recovery_window.ToMicros());
  EXPECT_EQ(b.stats.authority_rounds, 0u);
  EXPECT_EQ(b.stats.authority_acquisitions, 0u);
  EXPECT_EQ(b.stats.authority_stepdowns, 0u);
}

// --- Quorum bring-up --------------------------------------------------

TEST(ReplicaTest, SeedReplicaAcquiresOnColdBoot) {
  SimCluster cluster(ReplicatedOptions(3));
  FileId f = *cluster.store().CreatePath("/a", FileClass::kNormal,
                                         Bytes("v0"));
  auto read = cluster.SyncRead(0, f);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(Text(read.value().data), "v0");
  EXPECT_EQ(cluster.holder_index(), 0);
  ASSERT_TRUE(cluster.SyncWrite(1, f, Bytes("v1")).ok());
  EXPECT_EQ(cluster.oracle().violations(), 0u);
  ServerStats stats = cluster.server_stats();
  EXPECT_GE(stats.authority_acquisitions, 1u);
  EXPECT_EQ(stats.authority_stepdowns, 0u);
}

TEST(ReplicaTest, HolderRenewsInsteadOfChurning) {
  SimCluster cluster(ReplicatedOptions(3));
  cluster.RunFor(Duration::Seconds(30));
  // One acquisition, then steady renewals; nobody else ever takes over.
  EXPECT_EQ(cluster.holder_index(), 0);
  ServerStats stats = cluster.server_stats();
  EXPECT_EQ(stats.authority_acquisitions, 1u);
  EXPECT_EQ(stats.authority_stepdowns, 0u);
  // ~30s / 400ms renew interval, minus slack for the bring-up.
  EXPECT_GE(stats.authority_renewals, 50u);
}

// --- Failover ----------------------------------------------------------

TEST(ReplicaTest, BasicFailoverServesAfterHolderCrash) {
  SimCluster cluster(ReplicatedOptions(3));
  FileId f = *cluster.store().CreatePath("/a", FileClass::kNormal,
                                         Bytes("v0"));
  ASSERT_TRUE(cluster.SyncRead(0, f).ok());
  ASSERT_EQ(cluster.holder_index(), 0);

  cluster.CrashServer();  // fells the holder, replica 0
  TimePoint crashed = cluster.sim().Now();
  auto write = cluster.SyncWrite(1, f, Bytes("v1"),
                                 Duration::Seconds(30));
  ASSERT_TRUE(write.ok());
  Duration failover = cluster.sim().Now() - crashed;
  // The whole point: suspect + election + inherited-bound hold is a couple
  // of seconds, not the plain server's 10 s max-granted-term wait (which
  // it could not even begin until an operator restarted the process).
  EXPECT_LT(failover.ToSeconds(), 5.0);
  EXPECT_GT(cluster.holder_index(), 0);

  auto read = cluster.SyncRead(2, f);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(Text(read.value().data), "v1");
  EXPECT_EQ(cluster.oracle().violations(), 0u);

  ServerStats stats = cluster.server_stats();
  EXPECT_GE(stats.authority_acquisitions, 2u);
}

TEST(ReplicaTest, FailoverInheritsGrantBoundBeforeApprovingWrites) {
  SimCluster cluster(ReplicatedOptions(3));
  FileId f = *cluster.store().CreatePath("/a", FileClass::kNormal,
                                         Bytes("v0"));
  // Clients hold live read leases when the holder dies.
  ASSERT_TRUE(cluster.SyncRead(0, f).ok());
  ASSERT_TRUE(cluster.SyncRead(2, f).ok());
  cluster.CrashServer();
  ASSERT_TRUE(cluster.SyncWrite(1, f, Bytes("v1"),
                                Duration::Seconds(30)).ok());
  EXPECT_EQ(cluster.oracle().violations(), 0u);

  int holder = cluster.holder_index();
  ASSERT_GT(holder, 0);
  // The successor seeded its recovery machinery from the promise quorum:
  // a real (but small) write-hold window, far below the 10 s lease term.
  ReplicaNode& node = cluster.replica(static_cast<size_t>(holder));
  EXPECT_GT(node.last_inherited_bound().ToMicros(), 0);
  EXPECT_LT(node.last_inherited_bound().ToSeconds(), 2.5);
  ASSERT_NE(node.plain(), nullptr);
  EXPECT_GT(node.plain()->stats().recovery_window.ToMicros(), 0);
}

TEST(ReplicaTest, RestartedHolderRejoinsAsStandby) {
  SimCluster cluster(ReplicatedOptions(3));
  FileId f = *cluster.store().CreatePath("/a", FileClass::kNormal,
                                         Bytes("v0"));
  ASSERT_TRUE(cluster.SyncRead(0, f).ok());
  cluster.CrashServer();
  ASSERT_TRUE(cluster.SyncWrite(1, f, Bytes("v1"),
                                Duration::Seconds(30)).ok());
  int holder = cluster.holder_index();
  ASSERT_GT(holder, 0);

  cluster.RestartServer();  // replica 0 comes back
  cluster.RunFor(Duration::Seconds(10));
  // The restarted node warmed up, rejoined as acceptor/standby, and the
  // incumbent kept the lease -- no dueling authorities.
  EXPECT_EQ(cluster.holder_index(), holder);
  ASSERT_TRUE(cluster.SyncWrite(0, f, Bytes("v2")).ok());
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

// --- Partition and step-down ------------------------------------------

TEST(ReplicaTest, IsolatedHolderStepsDownAndStandbyTakesOver) {
  SimCluster cluster(ReplicatedOptions(3));
  FileId f = *cluster.store().CreatePath("/a", FileClass::kNormal,
                                         Bytes("v0"));
  ASSERT_TRUE(cluster.SyncRead(0, f).ok());
  ASSERT_EQ(cluster.holder_index(), 0);

  cluster.PartitionReplica(0, true);
  // Until its confirmed authority lease lapses the isolated holder keeps
  // serving -- legitimately: no standby can win a quorum while the lease
  // is live at the acceptors. Past that window it must have stepped down
  // and a standby must have taken over.
  cluster.RunFor(Duration::Seconds(8));
  // The isolated ex-holder noticed it could not re-confirm a quorum and
  // destroyed its serving plane before the successor could win.
  EXPECT_GE(cluster.replica(0).stats().authority_stepdowns, 1u);
  EXPECT_FALSE(cluster.replica(0).is_holder());
  int holder = cluster.holder_index();
  EXPECT_GT(holder, 0);
  ASSERT_TRUE(cluster.SyncWrite(1, f, Bytes("v1"),
                                Duration::Seconds(30)).ok());

  cluster.PartitionReplica(0, false);
  cluster.RunFor(Duration::Seconds(5));
  EXPECT_EQ(cluster.holder_index(), holder);  // incumbent keeps the lease
  ASSERT_TRUE(cluster.SyncWrite(2, f, Bytes("v2")).ok());
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

// --- The chaos pin: leader crash during writes, drifting clocks --------

TEST(ReplicaTest, LeaderCrashDuringWriteWithDriftingClocksStaysConsistent) {
  ClusterOptions options = ReplicatedOptions(3, 4, 7);
  options.replica_clocks = {ClockModel::Drifting(1.0004),
                            ClockModel::Drifting(0.9996),
                            ClockModel::Skewed(Duration::Millis(40))};
  options.client_clocks = {ClockModel::Drifting(1.0003),
                           ClockModel::Drifting(0.9997)};
  SimCluster cluster(options);
  std::vector<FileId> files;
  for (int i = 0; i < 3; ++i) {
    files.push_back(*cluster.store().CreatePath(
        "/f" + std::to_string(i), FileClass::kNormal, Bytes("v0")));
  }
  for (FileId f : files) {
    ASSERT_TRUE(cluster.SyncRead(0, f).ok());
    ASSERT_TRUE(cluster.SyncRead(3, f).ok());
  }
  // Launch writes asynchronously, then fell the holder while they are in
  // flight: some land pre-crash, some must be re-driven against the
  // successor. Whatever happens, no client may observe a stale byte.
  size_t completed = 0;
  for (size_t i = 0; i < files.size(); ++i) {
    cluster.client(1).Write(files[i], Bytes("w" + std::to_string(i)),
                            [&completed](Result<WriteResult> r) {
                              completed += r.ok() ? 1 : 0;
                            });
  }
  cluster.RunFor(Duration::Millis(2));
  cluster.CrashServer();
  cluster.RunFor(Duration::Seconds(30));
  EXPECT_GT(cluster.holder_index(), 0);
  EXPECT_EQ(completed, files.size());

  // Fresh reads from every surviving client agree with the store.
  for (FileId f : files) {
    std::string durable = Text(cluster.store().Find(f)->data);
    for (size_t c : {0u, 2u, 3u}) {
      auto read = cluster.SyncRead(c, f);
      ASSERT_TRUE(read.ok());
      EXPECT_EQ(Text(read.value().data), durable);
    }
  }
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

// Repeated crash/failover cycles keep write sequence ranges disjoint and
// the oracle clean -- the ballot-seeded boot counter at work.
TEST(ReplicaTest, RepeatedFailoversStayConsistent) {
  SimCluster cluster(ReplicatedOptions(3, 3, 21));
  FileId f = *cluster.store().CreatePath("/a", FileClass::kNormal,
                                         Bytes("v0"));
  int version = 0;
  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_TRUE(cluster.SyncRead(0, f).ok());
    ASSERT_TRUE(cluster.SyncWrite(1, f,
                                  Bytes("v" + std::to_string(++version)),
                                  Duration::Seconds(30)).ok());
    cluster.CrashServer();
    ASSERT_TRUE(cluster.SyncWrite(2, f,
                                  Bytes("v" + std::to_string(++version)),
                                  Duration::Seconds(30)).ok());
    cluster.RestartServer();
    cluster.RunFor(Duration::Seconds(5));
  }
  auto read = cluster.SyncRead(0, f);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(Text(read.value().data), "v" + std::to_string(version));
  EXPECT_EQ(cluster.oracle().violations(), 0u);
  EXPECT_GE(cluster.server_stats().authority_acquisitions, 4u);
}

// --- Live membership change -------------------------------------------

TEST(MembershipTest, AddReplicaJoinsAsLearnerAndCommits) {
  SimCluster cluster(ReplicatedOptions(3));
  FileId f = *cluster.store().CreatePath("/a", FileClass::kNormal,
                                         Bytes("v0"));
  ASSERT_TRUE(cluster.SyncRead(0, f).ok());
  ASSERT_EQ(cluster.holder_index(), 0);

  ASSERT_EQ(cluster.AddReplica(), 3);
  EXPECT_TRUE(cluster.replica(3).is_learner());
  // The joint config rides the next renewals; one authority term is ample.
  cluster.RunFor(Duration::Seconds(3));
  EXPECT_EQ(cluster.replica(0).member_addrs().size(), 4u);
  EXPECT_GE(cluster.replica(0).member_epoch(), 1u);
  EXPECT_FALSE(cluster.replica(3).is_learner());

  // The joined node is a real acceptor: clients keep reading and a holder
  // crash still elects a successor from the four-member set.
  cluster.CrashServer();
  ASSERT_TRUE(cluster.SyncWrite(1, f, Bytes("v1"),
                                Duration::Seconds(30)).ok());
  EXPECT_GT(cluster.holder_index(), 0);
  auto read = cluster.SyncRead(2, f);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(Text(read.value().data), "v1");
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(MembershipTest, DuplicateAndMultiStepChangesAreRejected) {
  SimCluster cluster(ReplicatedOptions(3));
  cluster.RunFor(Duration::Seconds(1));
  ASSERT_EQ(cluster.holder_index(), 0);
  ReplicaNode& holder = cluster.replica(0);
  std::vector<NodeId> members = holder.member_addrs();
  ASSERT_EQ(members.size(), 3u);

  // A duplicate add collapses to a zero-delta set and is refused.
  std::vector<NodeId> dup = members;
  dup.push_back(members[0]);
  EXPECT_FALSE(holder.RequestReconfig(std::move(dup)).ok());
  // Two additions at once break the single-step joint-quorum argument.
  std::vector<NodeId> two = members;
  two.push_back(NodeId(950));
  two.push_back(NodeId(951));
  EXPECT_FALSE(holder.RequestReconfig(std::move(two)).ok());
  // Only the holder may reconfigure.
  EXPECT_FALSE(cluster.replica(1).RequestReconfig(members).ok());
  // While one change is in flight a second is refused.
  ASSERT_EQ(cluster.AddReplica(), 3);
  EXPECT_EQ(cluster.AddReplica(), -1);
  cluster.RunFor(Duration::Seconds(3));
  EXPECT_EQ(cluster.replica(0).member_addrs().size(), 4u);
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(MembershipTest, RemovingTheHolderStepsDownAndReElects) {
  SimCluster cluster(ReplicatedOptions(3));
  FileId f = *cluster.store().CreatePath("/a", FileClass::kNormal,
                                         Bytes("v0"));
  ASSERT_TRUE(cluster.SyncRead(0, f).ok());
  ASSERT_EQ(cluster.holder_index(), 0);

  ASSERT_TRUE(cluster.RemoveReplica(0).ok());
  cluster.RunFor(Duration::Seconds(10));
  // Committing a set without itself forced an orderly step-down, and a
  // remaining member won the following election.
  int holder = cluster.holder_index();
  EXPECT_GT(holder, 0);
  EXPECT_GE(cluster.replica(0).stats().authority_stepdowns, 1u);
  EXPECT_FALSE(cluster.replica(0).is_holder());
  EXPECT_EQ(cluster.replica(static_cast<size_t>(holder))
                .member_addrs().size(), 2u);
  ASSERT_TRUE(cluster.SyncWrite(1, f, Bytes("v1"),
                                Duration::Seconds(30)).ok());
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(MembershipTest, ShrinksToASingleMemberAndStillServes) {
  SimCluster cluster(ReplicatedOptions(3));
  FileId f = *cluster.store().CreatePath("/a", FileClass::kNormal,
                                         Bytes("v0"));
  ASSERT_TRUE(cluster.SyncRead(0, f).ok());
  ASSERT_EQ(cluster.holder_index(), 0);

  ASSERT_TRUE(cluster.RemoveReplica(2).ok());
  cluster.RunFor(Duration::Seconds(3));
  ASSERT_TRUE(cluster.RemoveReplica(1).ok());
  cluster.RunFor(Duration::Seconds(3));
  EXPECT_EQ(cluster.holder_index(), 0);
  EXPECT_EQ(cluster.replica(0).member_addrs().size(), 1u);
  // A one-member set renews against itself and keeps serving.
  cluster.RunFor(Duration::Seconds(10));
  EXPECT_EQ(cluster.holder_index(), 0);
  ASSERT_TRUE(cluster.SyncWrite(1, f, Bytes("v1")).ok());
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(MembershipTest, MemberCrashMidReconfigStillCommits) {
  SimCluster cluster(ReplicatedOptions(3));
  FileId f = *cluster.store().CreatePath("/a", FileClass::kNormal,
                                         Bytes("v0"));
  ASSERT_TRUE(cluster.SyncRead(0, f).ok());
  ASSERT_EQ(cluster.holder_index(), 0);

  ASSERT_EQ(cluster.AddReplica(), 3);
  cluster.CrashReplica(2);  // an old-set acceptor dies before the commit
  cluster.RunFor(Duration::Seconds(5));
  // Joint quorum held anyway: {0,1} is a majority of the old three and
  // {0,1,3} of the new four, so the expanded set committed.
  EXPECT_GE(cluster.replica(0).member_epoch(), 1u);
  EXPECT_EQ(cluster.replica(0).member_addrs().size(), 4u);

  cluster.RestartReplica(2);
  cluster.RunFor(Duration::Seconds(5));
  EXPECT_EQ(cluster.holder_index(), 0);
  ASSERT_TRUE(cluster.SyncWrite(1, f, Bytes("v1")).ok());
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(MembershipTest, ChangesAreRefusedWithoutAConfirmedHolder) {
  SimCluster cluster(ReplicatedOptions(3));
  cluster.RunFor(Duration::Seconds(1));
  ASSERT_EQ(cluster.holder_index(), 0);
  cluster.CrashServer();  // fells the holder; the election is in flight
  EXPECT_EQ(cluster.AddReplica(), -1);
  EXPECT_FALSE(cluster.RemoveReplica(1).ok());
}

// --- Durable acceptors -------------------------------------------------

TEST(ReplicaDurableTest, RestartedAcceptorSkipsWarmupAndVotes) {
  // Durable run: the restarted standby restores its acceptor promises from
  // the journal and rejoins with no warm-up wait.
  ClusterOptions durable = ReplicatedOptions(3);
  durable.replica.durable_acceptors = true;
  SimCluster cluster(durable);
  FileId f = *cluster.store().CreatePath("/a", FileClass::kNormal,
                                         Bytes("v0"));
  ASSERT_TRUE(cluster.SyncRead(0, f).ok());
  cluster.RunFor(Duration::Seconds(2));
  cluster.CrashReplica(1);
  cluster.RunFor(Duration::Seconds(1));
  cluster.RestartReplica(1);
  EXPECT_EQ(cluster.replica(1).stats().authority_warmup_waits, 0u);
  // It votes immediately: fell the holder right away and failover
  // completes with the freshly-restarted acceptor in the quorum.
  cluster.CrashServer();
  TimePoint crashed = cluster.sim().Now();
  ASSERT_TRUE(cluster.SyncWrite(1, f, Bytes("v1"),
                                Duration::Seconds(30)).ok());
  EXPECT_LT((cluster.sim().Now() - crashed).ToSeconds(), 8.0);
  EXPECT_EQ(cluster.oracle().violations(), 0u);

  // Volatile control: the same schedule pays the one-term + 2eps warm-up.
  SimCluster control(ReplicatedOptions(3));
  FileId g = *control.store().CreatePath("/a", FileClass::kNormal,
                                         Bytes("v0"));
  ASSERT_TRUE(control.SyncRead(0, g).ok());
  control.RunFor(Duration::Seconds(2));
  control.CrashReplica(1);
  control.RunFor(Duration::Seconds(1));
  control.RestartReplica(1);
  EXPECT_GE(control.replica(1).stats().authority_warmup_waits, 1u);
  EXPECT_EQ(control.oracle().violations(), 0u);
}

TEST(ReplicaDurableTest, TornAcceptorJournalRecoversSafely) {
  ClusterOptions options = ReplicatedOptions(3);
  options.replica.durable_acceptors = true;
  SimCluster cluster(options);
  FileId f = *cluster.store().CreatePath("/a", FileClass::kNormal,
                                         Bytes("v0"));
  ASSERT_TRUE(cluster.SyncRead(0, f).ok());
  cluster.RunFor(Duration::Seconds(2));
  // Power-cut a standby with a torn journal tail: recovery replays the
  // acked prefix (persist-before-reply means no promise anyone acted on
  // is lost) and restores a conservative accepted-lease expiry.
  cluster.CrashReplica(1, TailDamage::kTorn);
  cluster.RunFor(Duration::Seconds(1));
  cluster.RestartReplica(1);
  cluster.RunFor(Duration::Seconds(2));
  // The recovered acceptor participates in a real election.
  cluster.CrashServer();
  ASSERT_TRUE(cluster.SyncWrite(1, f, Bytes("v1"),
                                Duration::Seconds(30)).ok());
  EXPECT_GT(cluster.holder_index(), 0);
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(ReplicaDurableTest, NoCrashRunIsDigestIdenticalToVolatile) {
  // With no replica loss the durable path adds journal writes but changes
  // no message or timing decision: the chaos digest must be bit-identical.
  ChaosOptions options;
  options.num_clients = 4;
  options.total_ops = 400;
  options.num_files = 6;
  options.num_replicas = 3;
  options.random_plan = false;
  options.plan = FaultPlan::Parse(
                     "@2.000000 partition 1 on;@4.000000 partition 1 off")
                     .value();
  ChaosReport volatile_run = RunChaos(options);
  options.durable_acceptors = true;
  ChaosReport durable_run = RunChaos(options);
  EXPECT_EQ(volatile_run.digest, durable_run.digest);
  EXPECT_EQ(volatile_run.violations, 0u);
  EXPECT_EQ(durable_run.violations, 0u);
}

// --- Standby reads -----------------------------------------------------

TEST(StandbyReadTest, StandbyServesReadsThroughHolderOutage) {
  ClusterOptions options = ReplicatedOptions(3);
  options.replica.standby_reads = true;
  SimCluster cluster(options);
  FileId f = *cluster.store().CreatePath("/a", FileClass::kNormal,
                                         Bytes("v0"));
  ASSERT_TRUE(cluster.SyncRead(0, f).ok());
  ASSERT_EQ(cluster.holder_index(), 0);
  cluster.RunFor(Duration::Millis(500));  // renewals delegate the bound

  cluster.CrashServer();
  // A standby answers the read under the holder's delegated expiry, far
  // faster than the election that writes must wait for.
  TimePoint crashed = cluster.sim().Now();
  auto read = cluster.SyncRead(1, f, Duration::Seconds(5));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(Text(read.value().data), "v0");
  EXPECT_LT((cluster.sim().Now() - crashed).ToSeconds(), 2.0);
  EXPECT_GE(cluster.server_stats().standby_reads_served, 1u);

  // Writes still wait for the next confirmed holder; nothing goes stale.
  ASSERT_TRUE(cluster.SyncWrite(2, f, Bytes("v1"),
                                Duration::Seconds(30)).ok());
  auto fresh = cluster.SyncRead(1, f);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(Text(fresh.value().data), "v1");
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

// --- Sharded x replicated ----------------------------------------------

TEST(ShardedReplicatedTest, ElectedHolderRunsShardsAndFailsOver) {
  ClusterOptions options = ReplicatedOptions(3, 4);
  options.num_shards = 4;
  SimCluster cluster(options);
  std::vector<FileId> files;
  for (int i = 0; i < 4; ++i) {
    files.push_back(*cluster.store().CreatePath(
        "/f" + std::to_string(i), FileClass::kNormal, Bytes("v0")));
  }
  for (FileId f : files) {
    ASSERT_TRUE(cluster.SyncRead(0, f).ok());
    ASSERT_TRUE(cluster.SyncRead(3, f).ok());
  }
  ASSERT_EQ(cluster.holder_index(), 0);
  ASSERT_TRUE(cluster.SyncWrite(1, files[0], Bytes("v1")).ok());

  cluster.CrashServer();
  ASSERT_TRUE(cluster.SyncWrite(2, files[1], Bytes("v2"),
                                Duration::Seconds(30)).ok());
  EXPECT_GT(cluster.holder_index(), 0);
  // The successor's sharded plane serves every shard's files with the
  // last committed bytes (the shared partitions, not per-replica copies).
  const char* expected[] = {"v1", "v2", "v0", "v0"};
  for (size_t i = 0; i < files.size(); ++i) {
    auto read = cluster.SyncRead(3, files[i]);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(Text(read.value().data), expected[i]);
  }
  EXPECT_EQ(cluster.oracle().violations(), 0u);
  EXPECT_GE(cluster.server_stats().authority_acquisitions, 2u);
}

TEST(ShardedReplicatedTest, OneReplicaShardedMatchesPlainSharded) {
  ClusterOptions plain = MakeVClusterOptions(Duration::Seconds(10), 3, 1);
  plain.num_shards = 4;
  ScriptResult a = RunScript(plain);
  ClusterOptions one = ReplicatedOptions(1);
  one.num_shards = 4;
  ScriptResult b = RunScript(one);

  EXPECT_EQ(a.violations, 0u);
  EXPECT_EQ(b.violations, 0u);
  EXPECT_EQ(a.failed_ops, b.failed_ops);
  EXPECT_EQ(a.contents, b.contents);
  EXPECT_EQ(a.stats.reads_served, b.stats.reads_served);
  EXPECT_EQ(a.stats.leases_granted, b.stats.leases_granted);
  EXPECT_EQ(a.stats.writes_received, b.stats.writes_received);
  EXPECT_EQ(a.stats.writes_committed, b.stats.writes_committed);
  EXPECT_EQ(a.stats.approval_rounds, b.stats.approval_rounds);
  EXPECT_EQ(b.stats.authority_rounds, 0u);
  EXPECT_EQ(b.stats.grant_cap_hits, 0u);
}

}  // namespace
}  // namespace leases
