// The lease protocol over real UDP sockets and real timers: the same state
// machines as the simulation, on the localhost runtime.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>

#include "src/runtime/node.h"

namespace leases {
namespace {

std::vector<uint8_t> B(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

class RuntimeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerParams server_params;
    server = std::make_unique<RuntimeServer>(NodeId(1), server_params,
                                             Duration::Seconds(2));
    file = *server->store().CreatePath("/data/hello", FileClass::kNormal,
                                       B("world"));
    ASSERT_TRUE(server->Start().ok());

    ClientParams client_params;
    client_params.transit_allowance = Duration::Millis(50);
    client_params.epsilon = Duration::Millis(50);
    client_params.request_timeout = Duration::Millis(300);
    client = std::make_unique<RuntimeClient>(
        NodeId(2), NodeId(1), server->store().root(), client_params);
    ASSERT_TRUE(client->Start(server->port()).ok());
    server->AddPeer(NodeId(2), client->port());
  }

  void TearDown() override {
    client->Stop();
    server->Stop();
  }

  std::unique_ptr<RuntimeServer> server;
  std::unique_ptr<RuntimeClient> client;
  FileId file;
};

TEST_F(RuntimeFixture, OpenReadWriteOverSockets) {
  Result<OpenResult> open = client->Open("/data/hello");
  ASSERT_TRUE(open.ok()) << open.error().ToString();
  EXPECT_EQ(open->file, file);

  Result<ReadResult> read = client->Read(file);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(std::string(read->data.begin(), read->data.end()), "world");
  EXPECT_FALSE(read->from_cache);

  Result<WriteResult> write = client->Write(file, B("there"));
  ASSERT_TRUE(write.ok());
  EXPECT_EQ(write->version, 2u);

  Result<ReadResult> again = client->Read(file);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->from_cache);  // lease still valid on a real clock
  EXPECT_EQ(std::string(again->data.begin(), again->data.end()), "there");
}

TEST_F(RuntimeFixture, LeaseExpiresOnRealClock) {
  ASSERT_TRUE(client->Read(file).ok());
  ClientStats before = client->stats();
  EXPECT_EQ(before.extend_requests, 0u);
  // Term is 2 s; after 2.2 s the lease must have lapsed.
  std::this_thread::sleep_for(std::chrono::milliseconds(2200));
  Result<ReadResult> read = client->Read(file);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->from_cache);
  EXPECT_EQ(client->stats().extend_requests, 1u);
}

TEST_F(RuntimeFixture, RetransmissionSurvivesDatagramLoss) {
  // Drop every 2nd outgoing datagram from the client; retries (same request
  // id, server-side dedup) must still complete every operation exactly once.
  client->WithClient([](CacheClient&) {});
  client->faults().set_drop_every_nth(2);
  Result<WriteResult> w1 = client->Write(file, B("v2"), Duration::Seconds(10));
  ASSERT_TRUE(w1.ok()) << w1.error().ToString();
  Result<WriteResult> w2 = client->Write(file, B("v3"), Duration::Seconds(10));
  ASSERT_TRUE(w2.ok());
  EXPECT_EQ(w2->version, w1->version + 1);  // no double-commit from retries
  Result<ReadResult> read = client->Read(file, Duration::Seconds(10));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(std::string(read->data.begin(), read->data.end()), "v3");
  EXPECT_GT(client->stats().retransmits, 0u);
}

TEST_F(RuntimeFixture, DuplicatedAndDelayedDatagramsAreHarmless) {
  // Duplicate half the client's datagrams and jitter a third of them; the
  // request-id dedup and version-monotonic reply handling must keep every
  // operation exactly-once over the real backend.
  TransportFaults faults;
  faults.dup_prob = 0.5;
  faults.dup_delay_max = Duration::Millis(5);
  faults.delay_prob = 0.3;
  faults.delay_max = Duration::Millis(5);
  faults.seed = 42;
  client->faults().SetFaults(faults);
  Result<WriteResult> w1 = client->Write(file, B("d2"), Duration::Seconds(10));
  ASSERT_TRUE(w1.ok()) << w1.error().ToString();
  Result<WriteResult> w2 = client->Write(file, B("d3"), Duration::Seconds(10));
  ASSERT_TRUE(w2.ok());
  EXPECT_EQ(w2->version, w1->version + 1);  // duplicates never double-commit
  Result<ReadResult> read = client->Read(file, Duration::Seconds(10));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(std::string(read->data.begin(), read->data.end()), "d3");
}

TEST(RuntimeMultiClient, SharedWriteInvalidatesOtherClient) {
  RuntimeServer server(NodeId(1), ServerParams{}, Duration::Seconds(5));
  FileId file = *server.store().CreatePath("/shared", FileClass::kNormal,
                                           B("v1"));
  ASSERT_TRUE(server.Start().ok());

  ClientParams params;
  params.transit_allowance = Duration::Millis(50);
  params.epsilon = Duration::Millis(50);
  RuntimeClient a(NodeId(2), NodeId(1), server.store().root(), params);
  RuntimeClient b(NodeId(3), NodeId(1), server.store().root(), params);
  ASSERT_TRUE(a.Start(server.port()).ok());
  ASSERT_TRUE(b.Start(server.port()).ok());
  server.AddPeer(NodeId(2), a.port());
  server.AddPeer(NodeId(3), b.port());

  ASSERT_TRUE(a.Read(file).ok());
  ASSERT_TRUE(b.Read(file).ok());

  // B writes; A must be consulted (real callback round over UDP) and its
  // copy invalidated.
  Result<WriteResult> w = b.Write(file, B("v2"));
  ASSERT_TRUE(w.ok()) << w.error().ToString();

  Result<ReadResult> read = a.Read(file);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(std::string(read->data.begin(), read->data.end()), "v2");
  EXPECT_FALSE(read->from_cache);
  EXPECT_EQ(a.stats().approvals_granted, 1u);

  a.Stop();
  b.Stop();
  server.Stop();
}

TEST(RuntimeDurability, RestartedServerRecoversGrantWindowFromDataDir) {
  const std::string dir =
      "leases_runtime_durable." + std::to_string(::getpid()) + ".tmp";
  std::filesystem::remove_all(dir);
  ClientParams client_params;
  client_params.transit_allowance = Duration::Millis(50);
  client_params.epsilon = Duration::Millis(50);

  // First incarnation journals its recovery state under `dir`; a client
  // read leaves a 1 s lease granted.
  {
    RuntimeServer server(NodeId(1), ServerParams{}, Duration::Seconds(1));
    FileId file = *server.store().CreatePath("/data/hello",
                                             FileClass::kNormal, B("v1"));
    ASSERT_TRUE(server.Start(dir).ok());
    RuntimeClient client(NodeId(2), NodeId(1), server.store().root(),
                         client_params);
    ASSERT_TRUE(client.Start(server.port()).ok());
    server.AddPeer(NodeId(2), client.port());
    ASSERT_TRUE(client.Read(file).ok());
    EXPECT_EQ(server.stats().recoveries, 0u);  // fresh boot, nothing durable
    EXPECT_GT(server.stats().journal_appends, 0u);
    client.Stop();
    server.Stop();
    // The server process dies here; only `dir` survives.
  }

  // Second incarnation over the same directory: it must find the durable
  // state, advance the boot counter, and hold writes for the granted term.
  RuntimeServer reborn(NodeId(1), ServerParams{}, Duration::Seconds(1));
  FileId file = *reborn.store().CreatePath("/data/hello", FileClass::kNormal,
                                           B("v1"));
  ASSERT_TRUE(reborn.Start(dir).ok());
  ServerStats stats = reborn.stats();
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_EQ(stats.recovery_window, Duration::Seconds(1));
  EXPECT_GE(stats.journal_replays, 1u);
  EXPECT_GT(stats.journal_replayed_records, 0u);
  bool in_recovery = false;
  reborn.WithServer(
      [&](LeaseServer& s) { in_recovery = s.InRecovery(); });
  EXPECT_TRUE(in_recovery);

  // A write during the window is held, not lost: it commits once the
  // pre-crash grant has provably expired.
  RuntimeClient client(NodeId(2), NodeId(1), reborn.store().root(),
                       client_params);
  ASSERT_TRUE(client.Start(reborn.port()).ok());
  reborn.AddPeer(NodeId(2), client.port());
  auto begin = std::chrono::steady_clock::now();
  Result<WriteResult> w = client.Write(file, B("v2"), Duration::Seconds(10));
  ASSERT_TRUE(w.ok()) << w.error().ToString();
  EXPECT_GT(std::chrono::steady_clock::now() - begin,
            std::chrono::milliseconds(200));
  client.Stop();
  reborn.Stop();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace leases
