// Sharded grant plane: routing invariants and the sharded-vs-single-shard
// differential -- the same seeded workload must produce identical
// oracle-checked protocol outcomes whether the server runs as one
// LeaseServer or as N FileId-partitioned shards.
#include <gtest/gtest.h>

#include "src/core/shard_router.h"
#include "src/core/sharded_lease_server.h"
#include "src/workload/poisson_driver.h"
#include "src/workload/v_config.h"

namespace leases {
namespace {

// --- Router unit tests ---

TEST(ShardRouterTest, SingleShardRoutesEverythingToZero) {
  Packet read = ReadRequest{RequestId(7), FileId(12345)};
  ShardRoute route = RouteServerPacket(read, 1);
  EXPECT_EQ(route.kind, ShardRouteKind::kSingle);
  EXPECT_EQ(route.shard, 0u);
}

TEST(ShardRouterTest, AllMessagesForOneFileAgreeOnTheShard) {
  // The routing invariant: every message touching file F lands on the same
  // shard, whatever the message type.
  for (uint64_t f = 1; f < 200; ++f) {
    for (size_t shards : {2u, 4u, 7u, 8u}) {
      size_t expect = ShardIndexOf(FileId(f), shards);
      Packet read = ReadRequest{RequestId(1), FileId(f)};
      Packet write = WriteRequest{RequestId(2), FileId(f)};
      Packet approve = ApproveReply{77, FileId(f)};
      Packet extend =
          ExtendRequest{RequestId(3), {ExtendItem{FileId(f), 1}}};
      Packet rel = Relinquish{{LeaseKey(f)}};  // private-cover invariant
      for (const Packet* p : {&read, &write, &approve, &extend, &rel}) {
        ShardRoute route = RouteServerPacket(*p, shards);
        EXPECT_EQ(route.kind, ShardRouteKind::kSingle);
        EXPECT_EQ(route.shard, expect) << "file " << f << " shards " << shards;
      }
    }
  }
}

TEST(ShardRouterTest, MixedBatchesAreSplit) {
  // Find two files on different shards of 4.
  FileId a(1);
  FileId b(2);
  while (ShardIndexOf(b, 4) == ShardIndexOf(a, 4)) {
    b = FileId(b.value() + 1);
  }
  Packet extend = ExtendRequest{
      RequestId(9), {ExtendItem{a, 1}, ExtendItem{b, 1}}};
  EXPECT_EQ(RouteServerPacket(extend, 4).kind, ShardRouteKind::kSplit);
  Packet rel = Relinquish{{LeaseKey(a.value()), LeaseKey(b.value())}};
  EXPECT_EQ(RouteServerPacket(rel, 4).kind, ShardRouteKind::kSplit);
  // Same batches on one shard stay single.
  Packet same = ExtendRequest{
      RequestId(9), {ExtendItem{a, 1}, ExtendItem{a, 2}}};
  EXPECT_EQ(RouteServerPacket(same, 4).kind, ShardRouteKind::kSingle);
}

TEST(ShardRouterTest, SequentialIdsSpreadAcrossShards) {
  // CreatePath hands out sequential ids; the mix must spread them instead of
  // striping whole ranges onto one shard.
  constexpr size_t kShards = 8;
  size_t counts[kShards] = {};
  constexpr uint64_t kFiles = 4096;
  for (uint64_t f = 1; f <= kFiles; ++f) {
    ++counts[ShardIndexOf(FileId(f), kShards)];
  }
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_GT(counts[s], kFiles / kShards / 2) << "shard " << s;
    EXPECT_LT(counts[s], kFiles / kShards * 2) << "shard " << s;
  }
}

// --- Sharded cluster end-to-end ---

TEST(ShardedClusterTest, BasicReadWriteAcrossShards) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 3, 1);
  options.num_shards = 4;
  SimCluster cluster(options);
  ASSERT_TRUE(cluster.sharded());

  // Enough files to hit several shards.
  std::vector<FileId> files;
  for (int i = 0; i < 8; ++i) {
    files.push_back(*cluster.store().CreatePath(
        "/d/f" + std::to_string(i), FileClass::kNormal, Bytes("v0")));
  }
  for (FileId f : files) {
    auto read = cluster.SyncRead(0, f);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(Text(read.value().data), "v0");
  }
  for (size_t i = 0; i < files.size(); ++i) {
    auto write = cluster.SyncWrite(1, files[i], Bytes("v1"));
    ASSERT_TRUE(write.ok()) << "file " << i;
  }
  for (FileId f : files) {
    auto read = cluster.SyncRead(2, f);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(Text(read.value().data), "v1");
  }
  EXPECT_EQ(cluster.oracle().violations(), 0u);

  ServerStats stats = cluster.server_stats();
  EXPECT_EQ(stats.writes_committed, files.size());
  // The workload really did exercise more than one shard.
  size_t active_shards = 0;
  for (size_t s = 0; s < cluster.sharded_server().num_shards(); ++s) {
    const ServerStats& shard = cluster.sharded_server().shard(s).stats();
    active_shards += (shard.reads_served + shard.writes_committed) > 0;
  }
  EXPECT_GT(active_shards, 1u);
}

TEST(ShardedClusterTest, CrossShardBatchedExtendMergesOneReply) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(2), 2, 3);
  options.num_shards = 8;
  options.client.batch_extensions = true;
  SimCluster cluster(options);

  std::vector<FileId> files;
  for (int i = 0; i < 12; ++i) {
    files.push_back(*cluster.store().CreatePath(
        "/g/f" + std::to_string(i), FileClass::kNormal, Bytes("x")));
  }
  // Client 0 holds leases over files on many shards...
  for (FileId f : files) {
    ASSERT_TRUE(cluster.SyncRead(0, f).ok());
  }
  // ...lets them lapse, then one read triggers a batched extension that
  // spans shards; it must complete (i.e. the merged reply reached the
  // client) and refresh every lease.
  cluster.RunFor(Duration::Seconds(3));
  auto read = cluster.SyncRead(0, files[0]);
  ASSERT_TRUE(read.ok());
  cluster.RunFor(Duration::Seconds(1));
  EXPECT_EQ(cluster.oracle().violations(), 0u);

  ServerStats stats = cluster.server_stats();
  EXPECT_GE(stats.extension_items, files.size());
}

TEST(ShardedClusterTest, ShardedCrashRecoveryHoldsWrites) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 3, 5);
  options.num_shards = 4;
  SimCluster cluster(options);
  FileId file =
      *cluster.store().CreatePath("/r/f", FileClass::kNormal, Bytes("a"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  ASSERT_TRUE(cluster.SyncRead(1, file).ok());

  cluster.CrashServer();
  cluster.RunFor(Duration::Seconds(1));
  cluster.RestartServer();

  // The owning shard recovered its max-term record, so the write waits out
  // the possible outstanding leases instead of clobbering them.
  auto write = cluster.SyncWrite(2, file, Bytes("b"), Duration::Seconds(60));
  ASSERT_TRUE(write.ok());
  ServerStats stats = cluster.server_stats();
  EXPECT_GT(stats.recovery_window, Duration::Zero());
  EXPECT_EQ(cluster.oracle().violations(), 0u);

  auto read = cluster.SyncRead(0, file, Duration::Seconds(60));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(Text(read.value().data), "b");
}

// --- The differential: sharded vs plain, same seed, same workload ---

struct DifferentialOutcome {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t failures = 0;
  uint64_t oracle_violations = 0;
  // Mode-invariant counters (extension_requests is deliberately excluded:
  // a split extend counts once per shard it touches).
  uint64_t reads_served = 0;
  uint64_t not_modified = 0;
  uint64_t extension_items = 0;
  uint64_t leases_granted = 0;
  uint64_t writes_received = 0;
  uint64_t writes_committed = 0;
  uint64_t relinquishes = 0;
  // Final committed state of every group file.
  std::vector<std::pair<uint64_t, std::string>> final_files;

  bool operator==(const DifferentialOutcome&) const = default;
};

DifferentialOutcome RunWorkload(size_t num_shards, uint64_t seed) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 12,
                                               seed);
  options.num_shards = num_shards;
  SimCluster cluster(options);
  PoissonOptions poisson;
  poisson.sharing = 4;
  poisson.seed = seed;
  poisson.measure = Duration::Seconds(300);
  PoissonDriver driver(&cluster, poisson);
  driver.Setup();
  WorkloadReport report = driver.Run();

  DifferentialOutcome out;
  out.reads = report.reads;
  out.writes = report.writes;
  out.failures = report.failures;
  out.oracle_violations = cluster.oracle().violations();
  ServerStats stats = cluster.server_stats();
  out.reads_served = stats.reads_served;
  out.not_modified = stats.not_modified_replies;
  out.extension_items = stats.extension_items;
  out.leases_granted = stats.leases_granted;
  out.writes_received = stats.writes_received;
  out.writes_committed = stats.writes_committed;
  out.relinquishes = stats.relinquishes;
  for (FileId f : cluster.store().AllFiles()) {
    const FileRecord* rec = cluster.sharded()
                                ? cluster.sharded_server().FindRecord(f)
                                : cluster.store().Find(f);
    out.final_files.emplace_back(rec->version, Text(rec->data));
  }
  return out;
}

TEST(ShardDifferentialTest, ShardedMatchesPlainServerExactly) {
  for (uint64_t seed : {11u, 42u}) {
    DifferentialOutcome plain = RunWorkload(1, seed);
    ASSERT_EQ(plain.oracle_violations, 0u);
    ASSERT_EQ(plain.failures, 0u);
    for (size_t shards : {2u, 8u}) {
      DifferentialOutcome sharded = RunWorkload(shards, seed);
      EXPECT_EQ(plain, sharded) << "seed " << seed << " shards " << shards;
    }
  }
}

TEST(ShardDifferentialTest, ShardedRunIsDeterministic) {
  DifferentialOutcome a = RunWorkload(4, 77);
  DifferentialOutcome b = RunWorkload(4, 77);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace leases
