// Unit tests for the server-side lease table.
#include <gtest/gtest.h>

#include "src/core/lease_table.h"

namespace leases {
namespace {

TimePoint At(int seconds) {
  return TimePoint::Epoch() + Duration::Seconds(seconds);
}

TEST(LeaseTableTest, GrantAndActiveHolders) {
  LeaseTable table;
  table.Grant(LeaseKey(1), NodeId(10), At(10));
  table.Grant(LeaseKey(1), NodeId(11), At(20));
  auto holders = table.ActiveHolders(LeaseKey(1), At(5));
  EXPECT_EQ(holders.size(), 2u);
  EXPECT_TRUE(table.Holds(LeaseKey(1), NodeId(10), At(5)));
  EXPECT_FALSE(table.Holds(LeaseKey(2), NodeId(10), At(5)));
}

TEST(LeaseTableTest, ExtensionNeverShortens) {
  LeaseTable table;
  table.Grant(LeaseKey(1), NodeId(10), At(20));
  table.Grant(LeaseKey(1), NodeId(10), At(10));  // "shorter" re-grant
  EXPECT_EQ(table.MaxExpiry(LeaseKey(1), At(0)), At(20));
  table.Grant(LeaseKey(1), NodeId(10), At(30));
  EXPECT_EQ(table.MaxExpiry(LeaseKey(1), At(0)), At(30));
  EXPECT_EQ(table.RecordCount(), 1u);  // still one record for the holder
}

TEST(LeaseTableTest, ExpiryIsExclusiveBoundary) {
  LeaseTable table;
  table.Grant(LeaseKey(1), NodeId(10), At(10));
  EXPECT_TRUE(table.Holds(LeaseKey(1), NodeId(10), At(9)));
  // A lease is no longer valid AT its expiry instant.
  EXPECT_FALSE(table.Holds(LeaseKey(1), NodeId(10), At(10)));
  EXPECT_EQ(table.ActiveHolderCount(LeaseKey(1), At(10)), 0u);
}

TEST(LeaseTableTest, ActiveHoldersPrunesExpired) {
  LeaseTable table;
  table.Grant(LeaseKey(1), NodeId(10), At(10));
  table.Grant(LeaseKey(1), NodeId(11), At(30));
  EXPECT_EQ(table.RecordCount(), 2u);
  auto holders = table.ActiveHolders(LeaseKey(1), At(20));
  ASSERT_EQ(holders.size(), 1u);
  EXPECT_EQ(holders[0].node, NodeId(11));
  // Pruning reclaimed the expired record ("the record of expired leases
  // could be reclaimed").
  EXPECT_EQ(table.RecordCount(), 1u);
  // Fully expired key disappears.
  (void)table.ActiveHolders(LeaseKey(1), At(40));
  EXPECT_EQ(table.KeyCount(), 0u);
}

TEST(LeaseTableTest, MaxExpiryDefaultsToNow) {
  LeaseTable table;
  EXPECT_EQ(table.MaxExpiry(LeaseKey(9), At(7)), At(7));
  table.Grant(LeaseKey(9), NodeId(1), At(12));
  table.Grant(LeaseKey(9), NodeId(2), At(15));
  EXPECT_EQ(table.MaxExpiry(LeaseKey(9), At(7)), At(15));
}

TEST(LeaseTableTest, RemoveSingleAndAll) {
  LeaseTable table;
  table.Grant(LeaseKey(1), NodeId(10), At(10));
  table.Grant(LeaseKey(1), NodeId(11), At(10));
  table.Grant(LeaseKey(2), NodeId(10), At(10));
  table.Remove(LeaseKey(1), NodeId(10));
  EXPECT_FALSE(table.Holds(LeaseKey(1), NodeId(10), At(0)));
  EXPECT_TRUE(table.Holds(LeaseKey(1), NodeId(11), At(0)));
  EXPECT_TRUE(table.Holds(LeaseKey(2), NodeId(10), At(0)));
  table.RemoveAll(NodeId(10));
  EXPECT_FALSE(table.Holds(LeaseKey(2), NodeId(10), At(0)));
  EXPECT_EQ(table.RecordCount(), 1u);
  table.Remove(LeaseKey(99), NodeId(1));  // no-op on absent key
}

TEST(LeaseTableTest, ClearDropsEverything) {
  LeaseTable table;
  table.Grant(LeaseKey(1), NodeId(10), At(10));
  table.Clear();
  EXPECT_EQ(table.KeyCount(), 0u);
  EXPECT_EQ(table.RecordCount(), 0u);
}

TEST(LeaseTableTest, CountersAgreeWithActiveHolders) {
  // ActiveHolderCount and Holds iterate without pruning or allocating;
  // they must agree with the pruned list ActiveHolders materializes, at
  // every instant relative to the staggered expiries.
  LeaseTable table;
  table.Grant(LeaseKey(1), NodeId(10), At(10));
  table.Grant(LeaseKey(1), NodeId(11), At(20));
  table.Grant(LeaseKey(1), NodeId(12), At(30));
  for (int t : {0, 5, 10, 15, 20, 25, 30, 35}) {
    size_t counted = table.ActiveHolderCount(LeaseKey(1), At(t));
    size_t holds = 0;
    for (uint32_t node : {10u, 11u, 12u}) {
      holds += table.Holds(LeaseKey(1), NodeId(node), At(t)) ? 1 : 0;
    }
    auto listed = table.ActiveHolders(LeaseKey(1), At(t));
    EXPECT_EQ(counted, listed.size()) << "at t=" << t;
    EXPECT_EQ(holds, listed.size()) << "at t=" << t;
    // Re-count after pruning: still consistent.
    EXPECT_EQ(table.ActiveHolderCount(LeaseKey(1), At(t)), listed.size());
  }
  // Absent key: everything agrees on zero.
  EXPECT_EQ(table.ActiveHolderCount(LeaseKey(7), At(0)), 0u);
  EXPECT_TRUE(table.ActiveHolders(LeaseKey(7), At(0)).empty());
}

TEST(LeaseTableTest, PerClientStorageMatchesPaperEstimate) {
  // "For a client holding about one hundred leases, the total is around
  // one kilobyte per client."
  LeaseTable table;
  for (uint64_t i = 1; i <= 100; ++i) {
    table.Grant(LeaseKey(i), NodeId(1), At(10));
  }
  size_t bytes = table.ApproxBytesFor(NodeId(1));
  EXPECT_GE(bytes, 100 * 16u);   // at least two pointers' worth per lease
  EXPECT_LE(bytes, 4 * 1024u);   // and comfortably around a kilobyte
}

}  // namespace
}  // namespace leases
