// Clock-health plane tests: the measured clock-error estimator, the
// uncertainty-aware term policy's degradation ladder (long leases -> short
// leases -> zero-term), its composition with the replicated authority's
// CappedTermPolicy, epsilon validation, dynamic self-invalidation, and the
// drift-ramp chaos acceptance runs that prove the measured bound where the
// assumed constant fails.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "src/clock/clock_error_estimator.h"
#include "src/core/sim_cluster.h"
#include "src/core/term_policy.h"
#include "src/replica/authority.h"
#include "src/workload/chaos_harness.h"
#include "src/workload/v_config.h"

namespace leases {
namespace {

TimePoint At(double seconds) {
  return TimePoint::Epoch() + Duration::Seconds(seconds);
}

// Feeds `estimator` stamps from a node whose clock runs at `rate`, one
// sample every `gap` seconds over [from, to).
void FeedRate(ClockErrorEstimator& estimator, NodeId node, double rate,
              double from, double to, double gap = 0.5) {
  for (double t = from; t < to; t += gap) {
    int64_t remote = static_cast<int64_t>(rate * t * 1e6);
    estimator.OnSample(node, remote, At(t));
  }
}

// --- ClockErrorEstimator --------------------------------------------------

TEST(ClockErrorEstimatorTest, UnknownNodeReportsPrior) {
  ClockErrorEstimator estimator;
  EXPECT_DOUBLE_EQ(estimator.DriftBound(NodeId(1), At(0)),
                   estimator.options().prior_bound);
  EXPECT_DOUBLE_EQ(estimator.WorstBound(At(0)),
                   estimator.options().prior_bound);
  EXPECT_FALSE(estimator.View(NodeId(1)).known);
  EXPECT_EQ(estimator.tracked_nodes(), 0u);
}

TEST(ClockErrorEstimatorTest, FirstSampleAloneStaysAtPrior) {
  // One stamp gives no rate; the node must demonstrate its clock first.
  ClockErrorEstimator estimator;
  estimator.OnSample(NodeId(1), 0, At(0));
  EXPECT_TRUE(estimator.View(NodeId(1)).known);
  EXPECT_FALSE(estimator.View(NodeId(1)).has_rate);
  EXPECT_NEAR(estimator.DriftBound(NodeId(1), At(0)),
              estimator.options().prior_bound, 1e-9);
}

TEST(ClockErrorEstimatorTest, ConvergesToTrueDriftRate) {
  ClockErrorEstimator estimator;
  FeedRate(estimator, NodeId(1), 1.002, 0.0, 30.0);
  ClockErrorEstimator::NodeView v = estimator.View(NodeId(1));
  ASSERT_TRUE(v.has_rate);
  EXPECT_NEAR(v.measured_rate, 1.002, 2e-4);
  // Bound = |rate-1| + pair noise; the prior has long since decayed.
  double bound = estimator.DriftBound(NodeId(1), At(30));
  EXPECT_GE(bound, 0.002);
  EXPECT_LE(bound, 0.006);
}

TEST(ClockErrorEstimatorTest, HealthyClockSettlesNearNoiseFloor) {
  ClockErrorEstimator estimator;
  FeedRate(estimator, NodeId(1), 1.0, 0.0, 60.0);
  double bound = estimator.DriftBound(NodeId(1), At(60));
  // 2 * noise_bound / max_window = 2*3ms/6s = 1e-3 is the resolution limit.
  EXPECT_GE(bound, estimator.options().floor_bound);
  EXPECT_LE(bound, 2e-3);
}

TEST(ClockErrorEstimatorTest, LocksOnToDriftImmediatelyForgivesSlowly) {
  ClockErrorEstimator estimator;
  FeedRate(estimator, NodeId(1), 1.0, 0.0, 20.0);
  double healthy = estimator.DriftBound(NodeId(1), At(20));
  // Drift excursion: the node's clock jumps to 5% fast. Keep the remote
  // timeline continuous across the rate change.
  double base_remote = 1.0 * 20.0;
  for (double t = 20.0; t < 30.0; t += 0.5) {
    int64_t remote =
        static_cast<int64_t>((base_remote + 1.05 * (t - 20.0)) * 1e6);
    estimator.OnSample(NodeId(1), remote, At(t));
  }
  double during = estimator.DriftBound(NodeId(1), At(30));
  EXPECT_GT(during, 0.03);  // locked on within the sample window
  // Back to perfect; the worst-case memory decays with forgive_half_life,
  // it does not vanish the moment the measurement improves.
  base_remote += 1.05 * 10.0;
  for (double t = 30.0; t < 32.0; t += 0.5) {
    int64_t remote =
        static_cast<int64_t>((base_remote + 1.0 * (t - 30.0)) * 1e6);
    estimator.OnSample(NodeId(1), remote, At(t));
  }
  EXPECT_GT(estimator.DriftBound(NodeId(1), At(32)), 0.01);
  for (double t = 32.0; t < 62.0; t += 0.5) {
    int64_t remote =
        static_cast<int64_t>((base_remote + 1.0 * (t - 30.0)) * 1e6);
    estimator.OnSample(NodeId(1), remote, At(t));
  }
  double forgiven = estimator.DriftBound(NodeId(1), At(62));
  EXPECT_LT(forgiven, 0.005);
  EXPECT_GE(forgiven, healthy * 0.5);
}

TEST(ClockErrorEstimatorTest, SilenceGrowsBoundTowardCeiling) {
  ClockErrorEstimator estimator;
  FeedRate(estimator, NodeId(1), 1.0, 0.0, 30.0);
  double fresh = estimator.DriftBound(NodeId(1), At(30));
  // Within the grace window nothing changes.
  EXPECT_DOUBLE_EQ(estimator.DriftBound(NodeId(1), At(31)), fresh);
  // Past it the bound grows: silence is not evidence of health.
  double stale = estimator.DriftBound(NodeId(1), At(75));
  EXPECT_GT(stale, fresh + 0.1);
  EXPECT_DOUBLE_EQ(estimator.DriftBound(NodeId(1), At(300)),
                   estimator.options().ceiling_bound);
}

TEST(ClockErrorEstimatorTest, BackwardsLocalTimeReanchors) {
  // A replica failover rebases the estimator's own clock; the old sample
  // pairs are meaningless against the new timeline.
  ClockErrorEstimator estimator;
  FeedRate(estimator, NodeId(1), 1.0, 0.0, 20.0);
  ASSERT_TRUE(estimator.View(NodeId(1)).has_rate);
  estimator.OnSample(NodeId(1), static_cast<int64_t>(20.0 * 1e6), At(5));
  ClockErrorEstimator::NodeView v = estimator.View(NodeId(1));
  EXPECT_TRUE(v.known);
  EXPECT_FALSE(v.has_rate);
  EXPECT_NEAR(estimator.DriftBound(NodeId(1), At(5)),
              estimator.options().prior_bound, 1e-9);
}

TEST(ClockErrorEstimatorTest, LongGapReanchors) {
  ClockErrorEstimator estimator;
  FeedRate(estimator, NodeId(1), 1.1, 0.0, 10.0);
  ASSERT_TRUE(estimator.View(NodeId(1)).has_rate);
  // reset_gap (30s) of silence: the node re-enters at the prior.
  estimator.OnSample(NodeId(1), static_cast<int64_t>(100.0 * 1e6), At(50));
  EXPECT_FALSE(estimator.View(NodeId(1)).has_rate);
}

TEST(ClockErrorEstimatorTest, EpsilonBoundScalesWithHorizon) {
  ClockErrorEstimator estimator;
  FeedRate(estimator, NodeId(1), 1.002, 0.0, 30.0);
  double worst = estimator.WorstBound(At(30));
  Duration eps = estimator.EpsilonBound(Duration::Seconds(10), At(30));
  Duration expected = Duration::Micros(static_cast<int64_t>(worst * 10e6)) +
                      estimator.options().noise_bound;
  EXPECT_EQ(eps, expected);
  EXPECT_EQ(estimator.EpsilonBound(Duration::Zero(), At(30)),
            estimator.options().noise_bound);
  EXPECT_TRUE(
      estimator.EpsilonBound(Duration::Infinite(), At(30)).IsInfinite());
}

TEST(ClockErrorEstimatorTest, WorstBoundCoversEveryTrackedNode) {
  ClockErrorEstimator estimator;
  FeedRate(estimator, NodeId(1), 1.0, 0.0, 20.0);
  FeedRate(estimator, NodeId(2), 1.05, 0.0, 20.0);
  EXPECT_GE(estimator.WorstBound(At(20)), 0.04);
  EXPECT_LT(estimator.DriftBound(NodeId(1), At(20)), 0.01);
  EXPECT_EQ(estimator.tracked_nodes(), 2u);
}

// --- UncertaintyAwareTermPolicy degradation ladder ------------------------

TEST(UncertaintyPolicyTest, TightSyncPassesInnerTermThrough) {
  UncertaintyAwareTermPolicy policy(
      std::make_unique<FixedTermPolicy>(Duration::Seconds(10)));
  // Demonstrate a healthy clock: bound ~1e-3 -> cap ~40s > 10s.
  for (double t = 0; t < 30.0; t += 0.5) {
    policy.OnClockSample(NodeId(1), static_cast<int64_t>(t * 1e6), At(t));
  }
  EXPECT_EQ(policy.TermFor(FileId(1), FileClass::kNormal, NodeId(1)),
            Duration::Seconds(10));
  EXPECT_EQ(policy.capped_grants(), 0u);
  EXPECT_EQ(policy.degraded_zero_grants(), 0u);
}

TEST(UncertaintyPolicyTest, UnknownClientIsCappedAtThePrior) {
  // prior 5e-3 with headroom 2.5 and epsilon 100ms -> cap = 8s: a fresh
  // client's first leases are short until its clock demonstrates itself
  // (the paper's 10s ballpark falls out of the defaults here).
  UncertaintyAwareTermPolicy policy(
      std::make_unique<FixedTermPolicy>(Duration::Seconds(60)));
  Duration term = policy.TermFor(FileId(1), FileClass::kNormal, NodeId(7));
  EXPECT_GT(term, Duration::Seconds(7.9));
  EXPECT_LT(term, Duration::Seconds(8.1));
  EXPECT_EQ(policy.capped_grants(), 1u);
}

TEST(UncertaintyPolicyTest, MeasuredDriftShortensTerms) {
  UncertaintyAwareTermPolicy policy(
      std::make_unique<FixedTermPolicy>(Duration::Seconds(60)));
  // 2% drift -> cap = 0.1/(2.5*~0.02) ~ 2s: degraded but still useful.
  for (double t = 0; t < 30.0; t += 0.5) {
    policy.OnClockSample(NodeId(1), static_cast<int64_t>(1.02 * t * 1e6),
                         At(t));
  }
  Duration term = policy.TermFor(FileId(1), FileClass::kNormal, NodeId(1));
  EXPECT_GE(term, Duration::Seconds(1));
  EXPECT_LE(term, Duration::Seconds(3));
  EXPECT_EQ(policy.capped_grants(), 1u);
  EXPECT_EQ(policy.degraded_zero_grants(), 0u);
}

TEST(UncertaintyPolicyTest, BlownSyncDegradesToZeroTerm) {
  UncertaintyAwareTermPolicy policy(
      std::make_unique<FixedTermPolicy>(Duration::Seconds(60)));
  // 20% drift -> cap = 0.2s < min_useful_term: zero-term degraded mode.
  for (double t = 0; t < 30.0; t += 0.5) {
    policy.OnClockSample(NodeId(1), static_cast<int64_t>(1.2 * t * 1e6),
                         At(t));
  }
  EXPECT_EQ(policy.TermFor(FileId(1), FileClass::kNormal, NodeId(1)),
            Duration::Zero());
  EXPECT_EQ(policy.degraded_zero_grants(), 1u);
}

TEST(UncertaintyPolicyTest, SilenceDegradesToZeroTermToo) {
  UncertaintyAwareTermPolicy policy(
      std::make_unique<FixedTermPolicy>(Duration::Seconds(10)));
  for (double t = 0; t < 30.0; t += 0.5) {
    policy.OnClockSample(NodeId(1), static_cast<int64_t>(t * 1e6), At(t));
  }
  ASSERT_EQ(policy.TermFor(FileId(1), FileClass::kNormal, NodeId(1)),
            Duration::Seconds(10));
  // 40s of silence: staleness growth blows the bound; the policy tracks
  // time through the hooks the server always calls before granting.
  policy.OnRead(FileId(1), At(70));
  EXPECT_EQ(policy.TermFor(FileId(1), FileClass::kNormal, NodeId(1)),
            Duration::Zero());
}

TEST(UncertaintyPolicyTest, ZeroInnerTermStaysZeroWithoutCounting) {
  UncertaintyAwareTermPolicy policy(ZeroTermPolicy());
  EXPECT_EQ(policy.TermFor(FileId(1), FileClass::kNormal, NodeId(1)),
            Duration::Zero());
  EXPECT_EQ(policy.capped_grants(), 0u);
  EXPECT_EQ(policy.degraded_zero_grants(), 0u);
}

TEST(UncertaintyPolicyTest, RecoversAfterDriftEnds) {
  UncertaintyAwareTermPolicy policy(
      std::make_unique<FixedTermPolicy>(Duration::Seconds(10)));
  double remote = 0.0;
  double t = 0.0;
  for (; t < 20.0; t += 0.5, remote += 1.2 * 0.5) {
    policy.OnClockSample(NodeId(1), static_cast<int64_t>(remote * 1e6),
                         At(t));
  }
  ASSERT_EQ(policy.TermFor(FileId(1), FileClass::kNormal, NodeId(1)),
            Duration::Zero());
  // 60s of demonstrated-healthy samples: forgiveness decays the bound and
  // terms come back.
  for (; t < 80.0; t += 0.5, remote += 0.5) {
    policy.OnClockSample(NodeId(1), static_cast<int64_t>(remote * 1e6),
                         At(t));
  }
  EXPECT_GT(policy.TermFor(FileId(1), FileClass::kNormal, NodeId(1)),
            Duration::Seconds(5));
}

// --- Composition with the replicated authority ----------------------------

struct RecordingPolicy : TermPolicy {
  Duration TermFor(FileId, FileClass, NodeId) override {
    return Duration::Seconds(1);
  }
  void OnClockSample(NodeId client, int64_t remote, TimePoint) override {
    ++samples;
    last_client = client;
    last_remote = remote;
  }
  int samples = 0;
  NodeId last_client;
  int64_t last_remote = 0;
};

TEST(CappedTermPolicyTest, ForwardsClockSamplesToInner) {
  // The replica plane wraps the real policy in CappedTermPolicy; stamps
  // must still reach the estimator underneath or failover kills the
  // clock-health plane silently.
  RecordingPolicy inner;
  CappedTermPolicy capped(&inner, [] { return Duration::Infinite(); });
  capped.OnClockSample(NodeId(9), 1234567, At(1));
  EXPECT_EQ(inner.samples, 1);
  EXPECT_EQ(inner.last_client, NodeId(9));
  EXPECT_EQ(inner.last_remote, 1234567);
}

// --- Epsilon unification / validation -------------------------------------

TEST(ClusterValidateTest, AcceptsTheVDefaults) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 1);
  EXPECT_TRUE(options.Validate().ok());
}

TEST(ClusterValidateTest, RejectsNegativeEpsilon) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 1);
  options.epsilon = Duration::Millis(-1);
  options.client.epsilon = options.epsilon;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(ClusterValidateTest, RejectsEpsilonNotSmallerThanTerm) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 1);
  options.epsilon = Duration::Seconds(10);
  options.client.epsilon = options.epsilon;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(ClusterValidateTest, RejectsClientServerEpsilonMismatch) {
  // One authoritative epsilon: a client shortening by less than the engine
  // assumes would silently void the Section 5 safety argument.
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 1);
  options.client.epsilon = options.epsilon + Duration::Millis(1);
  EXPECT_FALSE(options.Validate().ok());
}

// --- Dynamic self-invalidation --------------------------------------------

TEST(SelfInvalidationTest, ContentionShedsExtensionsAndShortensLeases) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 2);
  options.client.dynamic_self_invalidation = true;
  options.client.contention_threshold = 2.0;
  options.client.contention_half_life = Duration::Seconds(1000);
  SimCluster cluster(options);
  FileId hot = *cluster.store().CreatePath("/hot", FileClass::kNormal,
                                           Bytes("h"));
  FileId cold = *cluster.store().CreatePath("/cold", FileClass::kNormal,
                                            Bytes("c"));
  // Client 0 keeps re-reading `hot` while client 1 writes it: every write
  // consults client 0 (an approval), feeding its contention score.
  ASSERT_TRUE(cluster.SyncRead(0, hot).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(cluster.SyncWrite(1, hot, Bytes("w" + std::to_string(i))).ok());
    ASSERT_TRUE(cluster.SyncRead(0, hot).ok());
  }
  const ClientStats& mid = cluster.client(0).stats();
  EXPECT_GT(mid.approvals_granted, 0u);
  // Grants accepted after the score passed 0.1 were locally shortened.
  EXPECT_GT(mid.contention_shortened_leases, 0u);
  // Cache `cold` too, expire both leases, then read `cold`: the batched
  // extension keeps its focus but sheds the contended key.
  ASSERT_TRUE(cluster.SyncRead(0, cold).ok());
  ASSERT_TRUE(cluster.SyncRead(0, hot).ok());
  cluster.RunFor(Duration::Seconds(11));
  ASSERT_TRUE(cluster.SyncRead(0, cold).ok());
  EXPECT_GT(cluster.client(0).stats().contention_skipped_items, 0u);
}

TEST(SelfInvalidationTest, OffByDefaultKeepsCountersAtZero) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 2);
  ASSERT_FALSE(options.client.dynamic_self_invalidation);
  SimCluster cluster(options);
  FileId hot = *cluster.store().CreatePath("/hot", FileClass::kNormal,
                                           Bytes("h"));
  ASSERT_TRUE(cluster.SyncRead(0, hot).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(cluster.SyncWrite(1, hot, Bytes("w" + std::to_string(i))).ok());
    ASSERT_TRUE(cluster.SyncRead(0, hot).ok());
  }
  EXPECT_EQ(cluster.client(0).stats().contention_shortened_leases, 0u);
  EXPECT_EQ(cluster.client(0).stats().contention_skipped_items, 0u);
}

// --- Drift-ramp chaos acceptance ------------------------------------------

ChaosOptions RampSoakOptions() {
  ChaosOptions options;
  options.seed = 7;
  options.num_clients = 6;
  options.total_ops = 7000;
  options.num_files = 12;
  options.term = Duration::Seconds(10);
  // The workload must let leases ride unrenewed into the danger window
  // (the interval where the fast server has expired a lease the slow
  // client still believes in, at the tail of a full term). Two knobs make
  // that reachable: writes are rare per file (a write consults holders,
  // which invalidates and so restarts the lease cycle with a fresh grant),
  // and batched extension is off (with it on, any remote fetch renews the
  // client's whole cohort, so no lease ever ages near its term).
  options.write_fraction = 0.1;
  options.ops_per_sec = 5.0;
  options.client.batch_extensions = false;
  options.random_plan = false;
  // Every client ramps slow while the server ramps fast: each client gets
  // the full two-sided divergence, and the long plateau holds peak drift
  // across several complete lease cycles.
  for (uint32_t c = 0; c < options.num_clients; ++c) {
    DriftRampOptions ramp;
    ramp.target = c;
    ramp.server = (c == 0);  // one server ramp is enough
    ramp.hold_spans = 20;
    FaultPlan per_client = DriftRampPlan(ramp);
    options.plan.events.insert(options.plan.events.end(),
                               per_client.events.begin(),
                               per_client.events.end());
  }
  std::stable_sort(options.plan.events.begin(), options.plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return options;
}

TEST(DriftRampChaosTest, AdaptiveTermsSurviveTheRampWithZeroViolations) {
  // The tentpole acceptance run: drift ramps from 0.1% to 5% -- far past
  // what the constant 100ms epsilon covers over a 10s term -- while the
  // measured bound shortens terms step for step and finally degrades to
  // zero-term. Correctness must hold the whole way down the ladder.
  ChaosOptions options = RampSoakOptions();
  options.uncertainty_terms = true;
  ChaosReport report = RunChaos(options);
  EXPECT_EQ(report.violations, 0u) << report.plan_line;
  EXPECT_FALSE(report.hit_time_cap);
  EXPECT_GT(report.clock_samples, 0u);
  // The ladder was actually exercised: grants were capped below the inner
  // term, and the deep end of the ramp reached zero-term degraded mode.
  EXPECT_GT(report.uncertainty_capped_grants, 0u);
  EXPECT_GT(report.uncertainty_zero_grants, 0u);
}

TEST(DriftRampChaosTest, FixedEpsilonViolatesOnTheSameRamp) {
  // The same ramp under the historical FixedTermPolicy + constant epsilon:
  // this run MUST show stale reads. It pins the negative result that
  // motivates the whole clock-health plane; if it ever stops violating,
  // the adaptive run above is no longer proving anything.
  ChaosOptions options = RampSoakOptions();
  options.uncertainty_terms = false;
  ChaosReport report = RunChaos(options);
  EXPECT_GT(report.violations, 0u) << report.plan_line;
}

TEST(DriftRampChaosTest, RampSoakIsReplayableByteExact) {
  ChaosOptions options = RampSoakOptions();
  options.total_ops = 1500;
  DriftRampOptions short_ramp;
  short_ramp.server = true;
  short_ramp.end_magnitude = 0.01;
  options.plan = DriftRampPlan(short_ramp);
  options.uncertainty_terms = true;
  ChaosReport a = RunChaos(options);
  ChaosReport b = RunChaos(options);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.plan_line, b.plan_line);
}

}  // namespace
}  // namespace leases
