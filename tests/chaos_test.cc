// Chaos plane tests: FaultPlan text round-trips, random-plan determinism,
// chaos-harness replayability, the Oracle-checked soak acceptance runs, and
// pinned regressions for the protocol bugs the chaos runner exposed.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/core/fault_plan.h"
#include "src/workload/chaos_harness.h"

namespace leases {
namespace {

// --- FaultPlan text form --------------------------------------------------

FaultPlan SampleOfEveryOp() {
  FaultPlan plan;
  FaultEvent ev;
  ev.at = Duration::Millis(500);
  ev.op = FaultOp::kCrashServer;
  plan.events.push_back(ev);
  ev.at = Duration::Seconds(1.25);
  ev.op = FaultOp::kRestartServer;
  plan.events.push_back(ev);
  ev.at = Duration::Seconds(2);
  ev.op = FaultOp::kCrashClient;
  ev.target = 3;
  plan.events.push_back(ev);
  ev.op = FaultOp::kRestartClient;
  ev.at = Duration::Seconds(2.5);
  plan.events.push_back(ev);
  ev.op = FaultOp::kPartition;
  ev.at = Duration::Seconds(3);
  ev.target = 1;
  ev.on = true;
  plan.events.push_back(ev);
  ev.op = FaultOp::kHeal;
  ev.at = Duration::Seconds(4);
  plan.events.push_back(ev);
  ev.op = FaultOp::kRates;
  ev.at = Duration::Seconds(5);
  ev.loss = 0.05;
  ev.dup = 0.02;
  ev.reorder = 0.1;
  ev.burst = 0.01;
  plan.events.push_back(ev);
  ev.op = FaultOp::kDrift;
  ev.at = Duration::Seconds(6);
  ev.target = 0;
  ev.rate = 1.005;
  ev.span = Duration::Seconds(2);
  plan.events.push_back(ev);
  ev.op = FaultOp::kDriftServer;
  ev.at = Duration::Seconds(6.5);
  ev.target = 0;
  ev.rate = 1.02;
  ev.span = Duration::Seconds(1);
  plan.events.push_back(ev);
  ev = FaultEvent{};
  ev.op = FaultOp::kStorage;
  ev.at = Duration::Seconds(7);
  ev.mode = 1;  // torn journal tail
  plan.events.push_back(ev);
  ev.at = Duration::Seconds(7.5);
  ev.op = FaultOp::kRestartServer;
  plan.events.push_back(ev);
  return plan;
}

TEST(FaultPlanTest, ToLineParseRoundTripsEveryOp) {
  FaultPlan plan = SampleOfEveryOp();
  std::string line = plan.ToLine();
  std::optional<FaultPlan> parsed = FaultPlan::Parse(line);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->events.size(), plan.events.size());
  // Canonical: re-serializing the parse reproduces the same bytes.
  EXPECT_EQ(parsed->ToLine(), line);
}

TEST(FaultPlanTest, EndIncludesDriftSpan) {
  FaultPlan plan = SampleOfEveryOp();
  EXPECT_EQ(plan.End(), Duration::Seconds(8));  // drift at 6s + 2s span
}

TEST(FaultPlanTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(FaultPlan::Parse("crash-server").has_value());  // missing '@'
  EXPECT_FALSE(FaultPlan::Parse("@1.0 explode").has_value());
  EXPECT_FALSE(FaultPlan::Parse("@1.0 crash-client").has_value());
  EXPECT_FALSE(FaultPlan::Parse("@1.0 partition 2 sideways").has_value());
  EXPECT_FALSE(FaultPlan::Parse("@1.0 rates loss=0.1").has_value());
  EXPECT_FALSE(FaultPlan::Parse("@1.0 storage-crash").has_value());
  EXPECT_FALSE(
      FaultPlan::Parse("@1.0 storage-crash mode=shredded").has_value());
  EXPECT_TRUE(FaultPlan::Parse("").has_value());  // empty plan is valid
}

TEST(FaultPlanTest, StorageCrashTextFormIsCanonical) {
  std::optional<FaultPlan> plan = FaultPlan::Parse(
      "@1.000000 storage-crash mode=torn;@1.500000 restart-server;"
      "@2.000000 storage-crash mode=corrupt;@2.500000 restart-server;"
      "@3.000000 storage-crash mode=clean;@3.500000 restart-server");
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->events.size(), 6u);
  EXPECT_EQ(plan->events[0].mode, 1u);
  EXPECT_EQ(plan->events[2].mode, 2u);
  EXPECT_EQ(plan->events[4].mode, 0u);
  EXPECT_EQ(FaultPlan::Parse(plan->ToLine())->ToLine(), plan->ToLine());
}

TEST(FaultPlanTest, DriftServerTextFormIsCanonical) {
  // Byte-exact pin of the server-drift op's serialization: a failing soak
  // prints `seed + plan line`, so this text form is a replay interface.
  FaultPlan plan;
  FaultEvent ev;
  ev.at = Duration::Seconds(1.5);
  ev.op = FaultOp::kDriftServer;
  ev.target = 2;
  ev.rate = 1.015;
  ev.span = Duration::Seconds(3);
  plan.events.push_back(ev);
  EXPECT_EQ(plan.ToLine(),
            "@1.500000 drift-server 2 rate=1.015000 span=3.000000");
  std::optional<FaultPlan> parsed = FaultPlan::Parse(plan.ToLine());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->events.size(), 1u);
  EXPECT_EQ(parsed->events[0].op, FaultOp::kDriftServer);
  EXPECT_EQ(parsed->events[0].target, 2u);
  EXPECT_DOUBLE_EQ(parsed->events[0].rate, 1.015);
  EXPECT_EQ(parsed->events[0].span, Duration::Seconds(3));
  EXPECT_EQ(parsed->ToLine(), plan.ToLine());
  // End() counts the server-drift restoration, like client drift.
  EXPECT_EQ(plan.End(), Duration::Seconds(4.5));
}

TEST(FaultPlanTest, ServerDriftOnlyWhenOptedIn) {
  RandomPlanOptions plain;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed);
    for (const FaultEvent& ev : RandomFaultPlan(rng, plain).events) {
      EXPECT_NE(ev.op, FaultOp::kDriftServer);
    }
  }
  RandomPlanOptions drifty;
  drifty.allow_server_drift = true;
  int server_drifts = 0;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed);
    for (const FaultEvent& ev : RandomFaultPlan(rng, drifty).events) {
      if (ev.op == FaultOp::kDriftServer) {
        ++server_drifts;
        EXPECT_LE(std::abs(ev.rate - 1.0), drifty.drift_magnitude + 1e-12);
        EXPECT_LE(ev.span, drifty.drift_span_max);
      }
    }
  }
  EXPECT_GT(server_drifts, 0);
}

TEST(FaultPlanTest, DriftRampSweepsToEndMagnitude) {
  DriftRampOptions ramp;
  ramp.server = true;
  FaultPlan plan = DriftRampPlan(ramp);
  ASSERT_FALSE(plan.events.empty());
  // Pairs of (client, server) steps; magnitudes multiply by step_factor and
  // the final step is pinned exactly at end_magnitude.
  ASSERT_EQ(plan.events.size() % 2, 0u);
  double prev = 0.0;
  int plateau_steps = 0;
  for (size_t i = 0; i < plan.events.size(); i += 2) {
    const FaultEvent& client = plan.events[i];
    const FaultEvent& server = plan.events[i + 1];
    EXPECT_EQ(client.op, FaultOp::kDrift);
    EXPECT_EQ(server.op, FaultOp::kDriftServer);
    EXPECT_EQ(client.at, server.at);
    double m = 1.0 - client.rate;               // client runs slow
    EXPECT_NEAR(server.rate, 1.0 + m, 1e-12);   // server runs fast
    EXPECT_GE(m, prev);
    EXPECT_LE(m, ramp.end_magnitude + 1e-12);
    if (m >= ramp.end_magnitude - 1e-12) {
      ++plateau_steps;
    } else {
      EXPECT_GT(m, prev);
    }
    prev = m;
  }
  EXPECT_NEAR(prev, ramp.end_magnitude, 1e-12);
  // The ramp dwells at the top for hold_spans extra spans.
  EXPECT_EQ(plateau_steps, ramp.hold_spans + 1);
  // The ramp round-trips through the replay text form byte-exactly.
  EXPECT_EQ(FaultPlan::Parse(plan.ToLine())->ToLine(), plan.ToLine());
}

TEST(FaultPlanTest, StorageFaultsOnlyWhenOptedIn) {
  // Default options never draw a storage fault (pre-existing seeds stay
  // byte-identical); with the opt-in, some seed does, and every storage
  // crash is paired with a later server restart.
  RandomPlanOptions plain;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed);
    for (const FaultEvent& ev : RandomFaultPlan(rng, plain).events) {
      EXPECT_NE(ev.op, FaultOp::kStorage);
    }
  }
  RandomPlanOptions storage;
  storage.allow_storage_fault = true;
  int storage_events = 0;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed);
    FaultPlan plan = RandomFaultPlan(rng, storage);
    for (size_t i = 0; i < plan.events.size(); ++i) {
      const FaultEvent& ev = plan.events[i];
      if (ev.op != FaultOp::kStorage) {
        continue;
      }
      ++storage_events;
      EXPECT_GE(ev.mode, 1u);  // random plans always wound the tail
      EXPECT_LE(ev.mode, 2u);
      bool restarted = false;
      for (size_t j = i + 1; j < plan.events.size(); ++j) {
        if (plan.events[j].op == FaultOp::kRestartServer &&
            plan.events[j].at > ev.at) {
          restarted = true;
        }
      }
      EXPECT_TRUE(restarted) << "unpaired storage crash, seed " << seed;
    }
  }
  EXPECT_GT(storage_events, 0);
}

TEST(FaultPlanTest, RandomPlanIsDeterministicPerSeed) {
  RandomPlanOptions options;
  Rng a(77);
  Rng b(77);
  EXPECT_EQ(RandomFaultPlan(a, options).ToLine(),
            RandomFaultPlan(b, options).ToLine());
  Rng c(78);
  // Overwhelmingly likely to differ; equality would indicate the plan
  // ignores its rng.
  EXPECT_NE(RandomFaultPlan(a, options).ToLine(),
            RandomFaultPlan(c, options).ToLine());
}

TEST(FaultPlanTest, RandomPlanPairsDisruptionWithRecovery) {
  RandomPlanOptions options;
  options.max_disruptions = 6;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    FaultPlan plan = RandomFaultPlan(rng, options);
    int server_crash = 0, server_restart = 0;
    int client_crash = 0, client_restart = 0;
    int part_on = 0, part_off = 0;
    for (const FaultEvent& ev : plan.events) {
      switch (ev.op) {
        case FaultOp::kCrashServer: ++server_crash; break;
        case FaultOp::kRestartServer: ++server_restart; break;
        case FaultOp::kCrashClient: ++client_crash; break;
        case FaultOp::kRestartClient: ++client_restart; break;
        case FaultOp::kPartition: (ev.on ? ++part_on : ++part_off); break;
        default: break;
      }
      EXPECT_LE(ev.at, plan.End());
    }
    EXPECT_EQ(server_crash, server_restart);
    EXPECT_EQ(client_crash, client_restart);
    EXPECT_EQ(part_on, part_off);
  }
}

// --- Chaos harness --------------------------------------------------------

ChaosOptions SmokeOptions(uint64_t seed) {
  ChaosOptions options;
  options.seed = seed;
  options.num_clients = 4;
  options.total_ops = 250;
  options.num_files = 6;
  options.ops_per_sec = 40.0;
  options.dup = 0.02;
  options.reorder = 0.02;
  options.burst = 0.01;
  options.plan_options.horizon = Duration::Seconds(6);
  return options;
}

TEST(ChaosHarnessTest, SameSeedReproducesTheSameDigest) {
  ChaosReport a = RunChaos(SmokeOptions(5));
  ChaosReport b = RunChaos(SmokeOptions(5));
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.plan_line, b.plan_line);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  ChaosReport c = RunChaos(SmokeOptions(6));
  EXPECT_NE(a.digest, c.digest);
}

TEST(ChaosHarnessTest, SmokeSeedsRunCleanUnderFaultsAndRandomPlans) {
  for (uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    ChaosReport report = RunChaos(SmokeOptions(seed));
    EXPECT_EQ(report.violations, 0u) << "seed " << seed << " plan "
                                     << report.plan_line;
    EXPECT_FALSE(report.hit_time_cap);
    EXPECT_GT(report.reads + report.writes, 0u);
  }
}

TEST(ChaosHarnessTest, ExplicitPlanOverridesRandomPlan) {
  ChaosOptions options = SmokeOptions(5);
  FaultPlan plan =
      FaultPlan::Parse("@1.000000 partition 0 on;@2.000000 partition 0 off")
          .value();
  options.plan = plan;
  ChaosReport report = RunChaos(options);
  EXPECT_EQ(report.plan_line, plan.ToLine());
  EXPECT_EQ(report.violations, 0u);
}

// Acceptance soak from the issue: 10 clients, 10k ops, duplication +
// reorder + burst loss all >= 1%, random crash/partition/drift plans --
// zero Oracle violations.
TEST(ChaosHarnessTest, AcceptanceSoakTenClientsTenThousandOps) {
  ChaosOptions options;
  options.seed = 20260806;
  options.num_clients = 10;
  options.total_ops = 10000;
  options.loss = 0.01;
  options.dup = 0.01;
  options.reorder = 0.01;
  options.burst = 0.01;
  ChaosReport report = RunChaos(options);
  EXPECT_EQ(report.violations, 0u) << report.plan_line;
  EXPECT_FALSE(report.hit_time_cap);
  EXPECT_GT(report.reads, 1000u);
  EXPECT_GT(report.writes, 1000u);
}

// Acceptance soak for the durable storage plane: server power cuts with
// journal tail damage layered over the usual crash/partition/drift plans.
// Recovery must replay the damaged journal and the Oracle still demands
// zero violations across >= 10k operations.
TEST(ChaosHarnessTest, StorageFaultSoakTenThousandOps) {
  ChaosOptions options;
  options.seed = 20260807;
  options.num_clients = 10;
  options.total_ops = 10000;
  options.loss = 0.01;
  options.dup = 0.01;
  options.reorder = 0.01;
  options.burst = 0.01;
  options.plan_options.allow_storage_fault = true;
  ChaosReport report = RunChaos(options);
  EXPECT_EQ(report.violations, 0u) << report.plan_line;
  EXPECT_FALSE(report.hit_time_cap);
  EXPECT_GE(report.reads + report.writes + report.ops_failed, 10000u);
}

// --- Pinned regressions for bugs the chaos plane exposed ------------------

// A delayed Read/Extend reply must not date its lease term from receipt:
// the client anchors the expiry at the *first* send of the request, so a
// grant that arrives more than `term` after the request was first issued
// establishes no usable lease and the next read revalidates remotely.
// (Found by the chaos runner as a stale-read window under reorder jitter.)
TEST(ChaosRegressionTest, ReplyDelayedPastTermEstablishesNoLease) {
  ClusterOptions options;
  options.num_clients = 1;
  options.term = Duration::Seconds(2);
  SimCluster cluster(options);
  Result<FileId> file =
      cluster.store().CreatePath("/f", FileClass::kNormal, Bytes("x"));
  ASSERT_TRUE(file.ok());

  // Hold the first fetch on the wire for 5s (> term): the request is
  // retried across the partition, but the lease anchor stays at the first
  // send, so the grant the eventual reply carries is already expired.
  cluster.PartitionClient(0, true);
  cluster.sim().ScheduleAfter(Duration::Seconds(5),
                              [&]() { cluster.PartitionClient(0, false); });
  Result<ReadResult> first = cluster.SyncRead(0, *file);
  ASSERT_TRUE(first.ok());
  Result<ReadResult> second = cluster.SyncRead(0, *file);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cluster.client(0).stats().local_reads, 0u);
  EXPECT_GE(cluster.client(0).stats().remote_fetches +
                cluster.client(0).stats().extend_requests,
            2u);
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

// Each server incarnation draws write seqs from a disjoint range (durable
// boot counter in the high 32 bits), so a duplicate-delayed ApproveReply
// from before a crash can never be mistaken for an answer to a write issued
// after the restart.
TEST(ChaosRegressionTest, WriteSeqRangesAreDisjointAcrossRestarts) {
  ClusterOptions options;
  options.num_clients = 1;
  SimCluster cluster(options);
  uint64_t first_boot = cluster.server().next_write_seq() >> 32;
  cluster.CrashServer();
  cluster.RunFor(Duration::Seconds(1));
  cluster.RestartServer();
  uint64_t second_boot = cluster.server().next_write_seq() >> 32;
  EXPECT_EQ(second_boot, first_boot + 1);
  EXPECT_EQ(cluster.server().next_write_seq() & 0xffffffffu, 0u);
}

// An ApproveRequest that overtakes the ReadReply carrying a client's lease
// grant must not let the client install that grant after approving (and
// relinquishing the key): the server dropped the holdership when it
// processed the relinquish, so the client would serve cached reads no write
// ever consults it about. Pinned from a chaos run (seed 104) that caught a
// stale read 10+ seconds after the fault window closed.
TEST(ChaosRegressionTest, OvertakenGrantAfterRelinquishStaysSuspect) {
  ChaosOptions options;
  options.seed = 104;
  options.num_clients = 10;
  options.total_ops = 10000;
  options.loss = 0.01;
  options.dup = 0.01;
  options.reorder = 0.01;
  options.burst = 0.01;
  options.random_plan = false;
  options.plan = FaultPlan::Parse(
                     "@0.654736 crash-server;@1.893745 restart-server;"
                     "@2.921292 crash-client 7;@4.476737 restart-client 7")
                     .value();
  ChaosReport report = RunChaos(options);
  EXPECT_EQ(report.violations, 0u)
      << "overtaken-grant race regressed: " << report.plan_line;
}

// Dial reorder jitter high enough and approvals routinely overtake grants;
// the poisoned-grant counter proves the defense actually fires while the
// Oracle proves it suffices.
TEST(ChaosRegressionTest, HeavyReorderExercisesPoisonedGrants) {
  ChaosOptions options = SmokeOptions(11);
  options.total_ops = 1500;
  options.reorder = 0.25;
  ChaosReport report = RunChaos(options);
  EXPECT_EQ(report.violations, 0u) << report.plan_line;
}

// With every fault rate at zero the harness reduces to the plain workload:
// two runs agree, proving the fault plane's RNG stream stays untouched.
TEST(ChaosHarnessTest, ZeroFaultRatesStayDeterministic) {
  ChaosOptions options = SmokeOptions(3);
  options.loss = 0.0;
  options.dup = 0.0;
  options.reorder = 0.0;
  options.burst = 0.0;
  options.random_plan = false;
  ChaosReport a = RunChaos(options);
  ChaosReport b = RunChaos(options);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.violations, 0u);
  EXPECT_EQ(a.ops_failed, 0u);  // nothing to fail without faults
}

// --- Extension-jitter determinism pin -------------------------------------

// The de-synchronized extension scheduling (ClientParams::extension_jitter)
// derives each tick's offset from a hash of (client id, tick counter) and
// consumes no RNG stream, so it must be invisible until actually enabled:
// zero-fault digests stay bit-identical with the parameter at its default
// and with jitter set but anticipation off. Once anticipation is on, the
// jitter moves the extension traffic through the server's processing queue
// and the (time-mixed) trace digest must change -- while remaining
// deterministic per configuration.
TEST(ChaosHarnessTest, ExtensionJitterChangesDigestsOnlyWhenEnabled) {
  auto zero_fault = []() {
    ChaosOptions options = SmokeOptions(9);
    options.loss = 0.0;
    options.dup = 0.0;
    options.reorder = 0.0;
    options.burst = 0.0;
    options.random_plan = false;
    options.num_clients = 8;
    options.total_ops = 1500;
    options.ops_per_sec = 80.0;
    options.term = Duration::Seconds(3);
    return options;
  };

  ChaosReport base = RunChaos(zero_fault());
  EXPECT_EQ(base.violations, 0u);

  // Jitter without anticipatory extension is inert: no timer consults it.
  ChaosOptions inert = zero_fault();
  inert.client.extension_jitter = Duration::Millis(400);
  EXPECT_EQ(RunChaos(inert).digest, base.digest);

  ChaosOptions anticipate = zero_fault();
  anticipate.client.anticipatory_extension = true;
  anticipate.client.anticipation_lead = Duration::Seconds(1);
  ChaosReport lockstep = RunChaos(anticipate);
  EXPECT_EQ(RunChaos(anticipate).digest, lockstep.digest);

  ChaosOptions jittered = anticipate;
  jittered.client.extension_jitter = Duration::Millis(400);
  ChaosReport moved = RunChaos(jittered);
  EXPECT_EQ(RunChaos(jittered).digest, moved.digest);
  EXPECT_NE(moved.digest, lockstep.digest);
  EXPECT_EQ(lockstep.violations, 0u);
  EXPECT_EQ(moved.violations, 0u);
}

}  // namespace
}  // namespace leases
