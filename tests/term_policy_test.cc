// Unit tests for lease-term policies, especially the Section 4 adaptive
// policy ("a server can dynamically pick lease terms ... using the analytic
// model").
#include <gtest/gtest.h>

#include "src/analytic/model.h"
#include "src/core/term_policy.h"

namespace leases {
namespace {

TimePoint At(double seconds) {
  return TimePoint::Epoch() + Duration::Seconds(seconds);
}

TEST(FixedPolicyTest, ReturnsConfiguredTerm) {
  FixedTermPolicy policy(Duration::Seconds(10));
  EXPECT_EQ(policy.TermFor(FileId(1), FileClass::kNormal, NodeId(2)),
            Duration::Seconds(10));
  EXPECT_EQ(ZeroTermPolicy()->TermFor(FileId(1), FileClass::kNormal,
                                      NodeId(2)),
            Duration::Zero());
  EXPECT_TRUE(InfiniteTermPolicy()
                  ->TermFor(FileId(1), FileClass::kNormal, NodeId(2))
                  .IsInfinite());
}

TEST(ClassPolicyTest, PerClassTerms) {
  ClassTermPolicy policy(Duration::Seconds(10), Duration::Seconds(60),
                         Duration::Seconds(30));
  EXPECT_EQ(policy.TermFor(FileId(1), FileClass::kNormal, NodeId(2)),
            Duration::Seconds(10));
  EXPECT_EQ(policy.TermFor(FileId(1), FileClass::kInstalled, NodeId(2)),
            Duration::Seconds(60));
  EXPECT_EQ(policy.TermFor(FileId(1), FileClass::kDirectory, NodeId(2)),
            Duration::Seconds(30));
  EXPECT_EQ(policy.TermFor(FileId(1), FileClass::kTemporary, NodeId(2)),
            Duration::Seconds(10));
}

TEST(AdaptivePolicyTest, ConvergesToObservedReadRate) {
  AdaptiveTermPolicy policy;
  // Feed reads at exactly 2/s for a while.
  for (int i = 0; i < 600; ++i) {
    policy.OnRead(FileId(1), At(i * 0.5));
  }
  EXPECT_NEAR(policy.EstimatedReadRate(FileId(1)), 2.0, 0.2);
}

class AdaptiveRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(AdaptiveRateSweep, TracksConstantRates) {
  double rate = GetParam();
  AdaptiveTermPolicy policy;
  double t = 0;
  for (int i = 0; i < 2000; ++i) {
    t += 1.0 / rate;
    policy.OnRead(FileId(1), At(t));
  }
  EXPECT_NEAR(policy.EstimatedReadRate(FileId(1)), rate, rate * 0.15);
}

INSTANTIATE_TEST_SUITE_P(Rates, AdaptiveRateSweep,
                         ::testing::Values(0.1, 0.864, 2.0, 10.0));

TEST(AdaptivePolicyTest, VParametersYieldAboutTenSeconds) {
  // With R = 0.864/s, W = 0.04/s and S = 1, the default 10% load margin
  // picks t_c = 9/R ~ 10.4 s -- the paper's recommended ballpark.
  AdaptiveTermPolicy policy;
  double t = 0;
  for (int i = 0; i < 3000; ++i) {
    t += 1.0 / 0.864;
    policy.OnRead(FileId(1), At(t));
    if (i % 22 == 0) {  // ~ rate ratio 21.6
      policy.OnWrite(FileId(1), 1, At(t));
    }
  }
  Duration term = policy.TermFor(FileId(1), FileClass::kNormal, NodeId(2));
  EXPECT_GT(term, Duration::Seconds(8));
  EXPECT_LT(term, Duration::Seconds(14));
}

TEST(AdaptivePolicyTest, HeavyWriteSharingGetsZeroTerm) {
  // "a heavily write-shared file might be given a lease term of zero"
  AdaptiveTermPolicy policy;
  double t = 0;
  for (int i = 0; i < 2000; ++i) {
    t += 0.5;
    policy.OnRead(FileId(1), At(t));
    policy.OnWrite(FileId(1), /*holders=*/8, At(t + 0.1));
  }
  EXPECT_LE(policy.Alpha(FileId(1)), 1.0);
  EXPECT_EQ(policy.TermFor(FileId(1), FileClass::kNormal, NodeId(2)),
            Duration::Zero());
}

TEST(AdaptivePolicyTest, InstalledFilesGetMaxTerm) {
  AdaptiveTermPolicy::Options options;
  options.max_term = Duration::Seconds(60);
  AdaptiveTermPolicy policy(options);
  Duration term = policy.TermFor(FileId(1), FileClass::kInstalled, NodeId(2));
  EXPECT_GE(term, Duration::Seconds(60));
}

TEST(AdaptivePolicyTest, GrantAllowanceCompensatesShortening) {
  // "A lease given to a distant client could be increased to compensate."
  AdaptiveTermPolicy::Options options;
  options.grant_allowance = Duration::Millis(500);
  options.min_term = Duration::Seconds(5);
  AdaptiveTermPolicy policy(options);
  Duration term = policy.TermFor(FileId(1), FileClass::kNormal, NodeId(2));
  // min_term clamp + allowance.
  EXPECT_GE(term, Duration::Seconds(5) + Duration::Millis(500));
}

TEST(AdaptivePolicyTest, TermClampedToConfiguredRange) {
  AdaptiveTermPolicy::Options options;
  options.min_term = Duration::Seconds(2);
  options.max_term = Duration::Seconds(20);
  options.grant_allowance = Duration::Zero();
  AdaptiveTermPolicy policy(options);
  // Very fast reader: unclamped t_c would be tiny.
  double t = 0;
  for (int i = 0; i < 2000; ++i) {
    t += 0.001;
    policy.OnRead(FileId(1), At(t));
  }
  EXPECT_GE(policy.TermFor(FileId(1), FileClass::kNormal, NodeId(2)),
            Duration::Seconds(2));
  // Very slow reader: unclamped t_c would be huge.
  AdaptiveTermPolicy slow(options);
  t = 0;
  for (int i = 0; i < 100; ++i) {
    t += 1000.0;
    slow.OnRead(FileId(2), At(t));
  }
  EXPECT_LE(slow.TermFor(FileId(2), FileClass::kNormal, NodeId(2)),
            Duration::Seconds(20));
}

TEST(AdaptivePolicyTest, ColdStartUsesConfiguredInitialRates) {
  // Before any observation the EWMA seeds from the configured priors, both
  // through the accessors and through Alpha/TermFor themselves.
  AdaptiveTermPolicy::Options options;
  options.initial_reads_per_sec = 4.0;
  options.initial_writes_per_sec = 0.5;
  AdaptiveTermPolicy policy(options);
  EXPECT_DOUBLE_EQ(policy.EstimatedReadRate(FileId(9)), 4.0);
  EXPECT_DOUBLE_EQ(policy.EstimatedWriteRate(FileId(9)), 0.5);
  EXPECT_DOUBLE_EQ(policy.EstimatedSharing(FileId(9)), 1.0);
  EXPECT_DOUBLE_EQ(policy.Alpha(FileId(9)), 2.0 * 4.0 / 0.5);
  // A single observation must not collapse the estimate: the first event
  // has no inter-arrival gap, so rates stay at the prior.
  policy.OnRead(FileId(9), At(0));
  policy.OnWrite(FileId(9), 1, At(0));
  EXPECT_DOUBLE_EQ(policy.EstimatedReadRate(FileId(9)), 4.0);
  EXPECT_DOUBLE_EQ(policy.EstimatedWriteRate(FileId(9)), 0.5);
}

TEST(AdaptivePolicyTest, AlphaAtExactlyOneStillYieldsZeroTerm) {
  // The break-even boundary itself grants nothing: alpha <= 1 is the
  // condition, not alpha < 1.
  AdaptiveTermPolicy::Options options;
  options.initial_reads_per_sec = 1.0;
  options.initial_writes_per_sec = 2.0;  // alpha = 2*1/2 = 1 with S = 1
  AdaptiveTermPolicy policy(options);
  EXPECT_DOUBLE_EQ(policy.Alpha(FileId(1)), 1.0);
  EXPECT_EQ(policy.TermFor(FileId(1), FileClass::kNormal, NodeId(2)),
            Duration::Zero());
}

TEST(AdaptivePolicyTest, SharingDegreeTracksHoldersWithDecay) {
  AdaptiveTermPolicy policy;
  // One write observed with 10 holders: sharing moves a fifth of the way.
  policy.OnWrite(FileId(1), 10, At(0));
  EXPECT_NEAR(policy.EstimatedSharing(FileId(1)), 0.8 * 1.0 + 0.2 * 10.0,
              1e-9);
  // Subsequent unshared writes decay it geometrically back toward 1.
  double prev = policy.EstimatedSharing(FileId(1));
  for (int i = 1; i <= 20; ++i) {
    policy.OnWrite(FileId(1), 1, At(i));
    double cur = policy.EstimatedSharing(FileId(1));
    EXPECT_LT(cur, prev);
    prev = cur;
  }
  EXPECT_NEAR(prev, 1.0, 0.05);
  // Zero holders counts as one (the writer itself holds the file).
  policy.OnWrite(FileId(2), 0, At(0));
  EXPECT_DOUBLE_EQ(policy.EstimatedSharing(FileId(2)), 1.0);
}

TEST(AnalyticModelTest, BreakEvenTermMatchesAlphaCondition) {
  // t_c > 1 / (R (alpha - 1)) is the Section 3.1 break-even bound.
  SystemParams params = SystemParams::VSystem(10);
  LeaseModel model(params);
  ASSERT_TRUE(model.BreakEvenEffectiveTerm().has_value());
  double tc = model.BreakEvenEffectiveTerm()->ToSeconds();
  EXPECT_NEAR(tc, 1.0 / (0.864 * (model.Alpha() - 1.0)), 1e-6);
  // Just past break-even the load is (just) below the zero-term load.
  Duration ts = *model.BreakEvenTerm() + Duration::Seconds(1);
  EXPECT_LT(model.RelativeConsistencyLoad(ts), 1.0);
}

TEST(AnalyticModelTest, AlphaBelowOneMeansNoBreakEven) {
  SystemParams params = SystemParams::VSystem(60);  // alpha < 1
  LeaseModel model(params);
  EXPECT_LT(model.Alpha(), 1.0);
  EXPECT_FALSE(model.BreakEvenTerm().has_value());
  // And indeed a nonzero term makes load worse than zero-term.
  EXPECT_GT(model.RelativeConsistencyLoad(Duration::Seconds(5)), 1.0);
}

TEST(AnalyticModelTest, ZeroIsBetterThanVeryShortTerm) {
  // "a zero lease term is better than a very short lease term": with t_c
  // clamped to zero but t_s > 0, writes pay approvals and reads gain
  // nothing.
  SystemParams params = SystemParams::VSystem(10);
  LeaseModel model(params);
  Duration tiny = Duration::Millis(50);  // below the shortening allowance
  EXPECT_EQ(model.EffectiveTerm(tiny), Duration::Zero());
  EXPECT_GT(model.ConsistencyLoad(tiny),
            model.ConsistencyLoad(Duration::Zero()));
}

}  // namespace
}  // namespace leases
