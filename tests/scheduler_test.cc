// Edge-case and differential tests for the allocation-free scheduler:
// cancellation semantics, FIFO order at one instant, timer-wheel/heap
// boundary crossings, generation-tag reuse, and a randomized differential
// test pitting the 4-ary-heap + timer-wheel implementation against a naive
// sorted-vector reference.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "src/sim/rng.h"
#include "src/sim/simulator.h"

namespace leases {
namespace {

constexpr int64_t kHeapHorizonUs = int64_t{1} << 16;  // wheel starts here

TEST(SchedulerTest, CancelAfterFireReturnsFalse) {
  Simulator sim;
  EventId id = sim.ScheduleAfter(Duration::Millis(1), []() {});
  sim.RunUntilIdle();
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SchedulerTest, CancelTwiceReturnsFalseSecondTime) {
  Simulator sim;
  bool ran = false;
  EventId id = sim.ScheduleAfter(Duration::Seconds(30), [&]() { ran = true; });
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.RunUntilIdle();
  EXPECT_FALSE(ran);
}

TEST(SchedulerTest, SlotReuseDoesNotResurrectOldId) {
  Simulator sim;
  EventId a = sim.ScheduleAfter(Duration::Millis(1), []() {});
  ASSERT_TRUE(sim.Cancel(a));
  sim.RunUntilIdle();  // drops the stale queue entry, recycling the slot
  bool b_ran = false;
  EventId b = sim.ScheduleAfter(Duration::Millis(1), [&]() { b_ran = true; });
  EXPECT_NE(a.value(), b.value());  // generation tag differs even if slot reused
  EXPECT_FALSE(sim.Cancel(a));      // the old handle stays dead
  sim.RunUntilIdle();
  EXPECT_TRUE(b_ran);
}

TEST(SchedulerTest, RescheduleAtSameInstantKeepsFifoOrder) {
  Simulator sim;
  std::vector<int> order;
  TimePoint when = TimePoint::Epoch() + Duration::Millis(5);
  EventId a = sim.ScheduleAt(when, [&]() { order.push_back(1); });
  sim.ScheduleAt(when, [&]() { order.push_back(2); });
  sim.Cancel(a);
  // Rescheduling at the same instant lands *after* event 2: cancellation
  // must not let a newer event jump the FIFO order at that instant.
  sim.ScheduleAt(when, [&]() { order.push_back(3); });
  sim.ScheduleAt(when, [&]() { order.push_back(4); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{2, 3, 4}));
}

TEST(SchedulerTest, SameInstantFifoFromInsideCallbacks) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAfter(Duration::Millis(1), [&]() {
    // Zero-delay children of the same event fire in scheduling order, after
    // already-pending same-instant events.
    sim.ScheduleAfter(Duration::Zero(), [&]() { order.push_back(2); });
    sim.ScheduleAfter(Duration::Zero(), [&]() { order.push_back(3); });
    order.push_back(1);
  });
  sim.ScheduleAt(TimePoint::Epoch() + Duration::Millis(1),
                 [&]() { order.push_back(10); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 10, 2, 3}));
}

TEST(SchedulerTest, OrderPreservedAcrossHeapHorizonBoundary) {
  Simulator sim;
  std::vector<int64_t> fired;
  // Straddle the heap/wheel boundary (2^16 us) and the level-0/level-1
  // boundary (2^24 us), inserting out of order.
  std::vector<int64_t> delays = {
      kHeapHorizonUs + 1,      kHeapHorizonUs - 1, kHeapHorizonUs,
      (int64_t{1} << 24) + 7,  (int64_t{1} << 24) - 3,
      (int64_t{1} << 32) + 11, 3,
      (int64_t{1} << 24),      kHeapHorizonUs + 2,
  };
  for (int64_t d : delays) {
    sim.ScheduleAfter(Duration::Micros(d),
                      [&fired, &sim]() { fired.push_back(sim.Now().ToMicros()); });
  }
  sim.RunUntilIdle();
  ASSERT_EQ(fired.size(), delays.size());
  for (size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1], fired[i]);
  }
  EXPECT_EQ(fired.front(), 3);
  EXPECT_EQ(fired.back(), (int64_t{1} << 32) + 11);
}

TEST(SchedulerTest, SameInstantFifoAcrossWheelAndHeap) {
  Simulator sim;
  std::vector<int> order;
  TimePoint t = TimePoint::Epoch() + Duration::Seconds(100);
  // First event parks in the wheel (100 s ahead)...
  sim.ScheduleAt(t, [&]() { order.push_back(1); });
  sim.RunFor(Duration::Seconds(100) - Duration::Micros(10));
  // ...the second goes straight to the heap (10 us ahead). FIFO at the
  // shared instant must still follow scheduling order.
  sim.ScheduleAt(t, [&]() { order.push_back(2); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SchedulerTest, CancelledWheelEventsAreReclaimedWithoutFiring) {
  Simulator sim;
  int fired = 0;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(sim.ScheduleAfter(Duration::Seconds(10 + i),
                                    [&]() { ++fired; }));
  }
  for (size_t i = 0; i < ids.size(); i += 2) {
    EXPECT_TRUE(sim.Cancel(ids[i]));
  }
  EXPECT_EQ(sim.pending_events(), 50u);
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 50);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SchedulerTest, FarFutureEventsBeyondWheelRangeFire) {
  Simulator sim;
  bool near_ran = false;
  bool far_ran = false;
  // ~31.7 years ahead: beyond the wheel's ~12.7-day range, lands in the
  // overflow list.
  sim.ScheduleAfter(Duration::Seconds(1e9), [&]() { far_ran = true; });
  sim.ScheduleAfter(Duration::Seconds(1), [&]() { near_ran = true; });
  sim.RunFor(Duration::Seconds(2));
  EXPECT_TRUE(near_ran);
  EXPECT_FALSE(far_ran);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunUntilIdle();
  EXPECT_TRUE(far_ran);
}

TEST(SchedulerTest, RunUntilStopsBeforeParkedWheelEvents) {
  Simulator sim;
  bool ran = false;
  sim.ScheduleAfter(Duration::Seconds(50), [&]() { ran = true; });
  sim.RunUntil(TimePoint::Epoch() + Duration::Seconds(49));
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.Now(), TimePoint::Epoch() + Duration::Seconds(49));
  sim.RunFor(Duration::Seconds(1));
  EXPECT_TRUE(ran);
}

TEST(SchedulerTest, StepDrainsWheelInOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAfter(Duration::Seconds(20), [&]() { order.push_back(2); });
  sim.ScheduleAfter(Duration::Seconds(10), [&]() { order.push_back(1); });
  sim.ScheduleAfter(Duration::Micros(5), [&]() { order.push_back(0); });
  EXPECT_TRUE(sim.Step());
  EXPECT_TRUE(sim.Step());
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SchedulerTest, LargeCapturesFallBackToHeapAllocation) {
  Simulator sim;
  // 128-byte capture: exceeds InlineAction's inline storage, so this takes
  // the heap-fallback path; behaviour must be identical.
  struct Big {
    char bytes[128] = {};
  } big;
  big.bytes[0] = 42;
  char seen = 0;
  sim.ScheduleAfter(Duration::Millis(1), [big, &seen]() { seen = big.bytes[0]; });
  sim.RunUntilIdle();
  EXPECT_EQ(seen, 42);
}

// --- Differential test against a naive reference scheduler ---

// Straightforward (time, seq)-ordered scheduler: linear-scan minimum over an
// unsorted vector. Obviously correct, O(n) per op -- the behavioural spec
// the production scheduler must match operation-for-operation.
class ReferenceScheduler {
 public:
  using Handle = uint64_t;

  int64_t now_us() const { return now_us_; }

  Handle ScheduleAfter(int64_t delay_us, std::function<void()> fn) {
    int64_t when = now_us_ + (delay_us < 0 ? 0 : delay_us);
    events_.push_back(Ev{when, next_seq_++, next_id_, std::move(fn)});
    return next_id_++;
  }

  bool Cancel(Handle h) {
    for (auto it = events_.begin(); it != events_.end(); ++it) {
      if (it->id == h) {
        events_.erase(it);
        return true;
      }
    }
    return false;
  }

  void RunFor(int64_t d_us) { RunLimit(now_us_ + d_us); }
  void RunUntilIdle() { RunLimit(std::numeric_limits<int64_t>::max(), false); }

  size_t pending() const { return events_.size(); }

 private:
  struct Ev {
    int64_t when;
    uint64_t seq;
    Handle id;
    std::function<void()> fn;
  };

  void RunLimit(int64_t deadline, bool advance_to_deadline = true) {
    while (!events_.empty()) {
      size_t best = 0;
      for (size_t i = 1; i < events_.size(); ++i) {
        if (events_[i].when < events_[best].when ||
            (events_[i].when == events_[best].when &&
             events_[i].seq < events_[best].seq)) {
          best = i;
        }
      }
      if (events_[best].when > deadline) {
        break;
      }
      Ev ev = std::move(events_[best]);
      events_.erase(events_.begin() + static_cast<ptrdiff_t>(best));
      now_us_ = ev.when;
      ev.fn();
    }
    if (advance_to_deadline && now_us_ < deadline) {
      now_us_ = deadline;
    }
  }

  int64_t now_us_ = 0;
  uint64_t next_seq_ = 0;
  Handle next_id_ = 1;
  std::vector<Ev> events_;
};

// Adapter giving Simulator the same minimal interface.
class SimAdapter {
 public:
  using Handle = EventId;

  int64_t now_us() const { return sim_.Now().ToMicros(); }
  Handle ScheduleAfter(int64_t delay_us, std::function<void()> fn) {
    return sim_.ScheduleAfter(Duration::Micros(delay_us), std::move(fn));
  }
  bool Cancel(Handle h) { return sim_.Cancel(h); }
  void RunFor(int64_t d_us) { sim_.RunFor(Duration::Micros(d_us)); }
  void RunUntilIdle() { sim_.RunUntilIdle(); }
  size_t pending() const { return sim_.pending_events(); }

 private:
  Simulator sim_;
};

// Runs a pseudo-random schedule/cancel/run script against `S` and returns a
// trace of everything observable: firing order with timestamps, cancel
// results, and pending counts. Identical seeds must yield identical traces
// on both schedulers.
template <typename S>
std::vector<int64_t> RunScript(uint64_t seed) {
  S sched;
  Rng rng(seed);
  std::vector<int64_t> trace;
  std::vector<typename S::Handle> handles;
  int next_tag = 0;

  // Delay magnitudes chosen to land in the heap (us..ms), every wheel level
  // (65 ms..hours), and the overflow list.
  auto random_delay = [&rng]() -> int64_t {
    switch (rng.NextBounded(6)) {
      case 0: return 0;
      case 1: return static_cast<int64_t>(rng.NextBounded(100));
      case 2: return static_cast<int64_t>(rng.NextBounded(100'000));
      case 3: return static_cast<int64_t>(rng.NextBounded(10'000'000));
      case 4: return static_cast<int64_t>(rng.NextBounded(5'000'000'000));
      default: return static_cast<int64_t>(rng.NextBounded(2'000'000'000'000));
    }
  };

  std::function<void(int)> fire = [&](int tag) {
    trace.push_back(tag);
    trace.push_back(sched.now_us());
    // Children keep the churn going while the queue drains.
    uint64_t children = rng.NextBounded(3);
    for (uint64_t c = 0; c < children && next_tag < 4000; ++c) {
      int tag2 = next_tag++;
      handles.push_back(
          sched.ScheduleAfter(random_delay(), [&fire, tag2]() { fire(tag2); }));
    }
    if (!handles.empty() && rng.NextBounded(4) == 0) {
      size_t victim = rng.NextBounded(handles.size());
      trace.push_back(sched.Cancel(handles[victim]) ? 1 : 0);
    }
  };

  for (int round = 0; round < 8; ++round) {
    uint64_t batch = 20 + rng.NextBounded(30);
    for (uint64_t i = 0; i < batch; ++i) {
      int tag = next_tag++;
      handles.push_back(
          sched.ScheduleAfter(random_delay(), [&fire, tag]() { fire(tag); }));
    }
    for (int i = 0; i < 5 && !handles.empty(); ++i) {
      size_t victim = rng.NextBounded(handles.size());
      trace.push_back(sched.Cancel(handles[victim]) ? 1 : 0);
    }
    trace.push_back(static_cast<int64_t>(sched.pending()));
    sched.RunFor(static_cast<int64_t>(rng.NextBounded(3'000'000'000)));
    trace.push_back(sched.now_us());
  }
  sched.RunUntilIdle();
  trace.push_back(static_cast<int64_t>(sched.pending()));
  return trace;
}

TEST(SchedulerDifferentialTest, MatchesNaiveReferenceAcrossSeeds) {
  for (uint64_t seed : {1u, 7u, 42u, 1234u, 99999u}) {
    std::vector<int64_t> expected = RunScript<ReferenceScheduler>(seed);
    std::vector<int64_t> actual = RunScript<SimAdapter>(seed);
    ASSERT_FALSE(expected.empty());
    EXPECT_EQ(actual, expected) << "seed " << seed;
  }
}

}  // namespace
}  // namespace leases
