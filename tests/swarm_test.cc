// Swarm-plane tests: the memory-lean SwarmClientArray and the SwarmCluster
// harness behind bench_swarm. Coverage follows the PR's claims:
//  - installed-file multicast keeps a whole cohort's reads local while the
//    server's steady-state load stays flat in the member count;
//  - plain and zero-term planes behave as the paper's baselines;
//  - a write to a partitioned installed cohort defers for the advertised
//    window, and healed members revalidate (suspect marks) before serving
//    locally again -- zero Oracle violations throughout;
//  - admission control sheds synchronized bursts with a bounded backlog and
//    the jittered client backoff converges;
//  - the per-member footprint honours the issue's 256-byte budget.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/core/swarm_cluster.h"

namespace leases {
namespace {

std::vector<uint8_t> B(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

// Message counts, not modeled CPU, are what these tests assert; the default
// 1 ms proc_time would saturate a server at ~1k msgs/s and distort the
// burst tests (see bench_swarm for the same reasoning).
SwarmClusterOptions FastOptions() {
  SwarmClusterOptions options;
  options.net.proc_time = Duration::Micros(10);
  return options;
}

TEST(SwarmTest, InstalledMulticastKeepsEveryReadAfterWarmupLocal) {
  SwarmClusterOptions options = FastOptions();
  options.num_members = 200;
  options.num_servers = 1;
  options.files_per_server = 2;
  options.term = Duration::Seconds(10);
  options.multicast_period = Duration::Seconds(2);
  options.swarm.read_period = Duration::Seconds(2);
  SwarmCluster cluster(options);
  cluster.RunFor(Duration::Seconds(40));

  const SwarmStats& s = cluster.swarm().stats();
  EXPECT_GT(s.multicasts_seen, 0u);
  EXPECT_GT(s.renewals, 0u);
  // Exactly one fetch per member (the initial contents); every later read
  // is served under the multicast-renewed lease.
  EXPECT_EQ(s.remote_fetches, 200u);
  EXPECT_EQ(s.local_reads, s.reads - s.remote_fetches - s.coalesced_reads);
  EXPECT_GT(s.local_reads, s.remote_fetches * 10);
  EXPECT_EQ(s.suspects_marked, 0u);
  EXPECT_EQ(s.timeouts, 0u);
  EXPECT_EQ(s.failed_reads, 0u);
  for (uint32_t m = 0; m < options.num_members; ++m) {
    EXPECT_TRUE(cluster.swarm().HasValidLease(m)) << "member " << m;
  }
  EXPECT_EQ(cluster.TotalViolations(), 0u);
}

TEST(SwarmTest, SteadyStateServerLoadIsFlatInMemberCount) {
  uint64_t handled[2] = {0, 0};
  const uint32_t sizes[2] = {100, 1000};
  for (int i = 0; i < 2; ++i) {
    SwarmClusterOptions options = FastOptions();
    options.num_members = sizes[i];
    options.num_servers = 1;
    SwarmCluster cluster(options);
    cluster.RunFor(Duration::Seconds(20));  // warmup: initial fetches
    cluster.network().ResetStats();
    cluster.RunFor(Duration::Seconds(30));
    handled[i] = cluster.TotalServerHandled();
    EXPECT_EQ(cluster.TotalViolations(), 0u);
  }
  // 10x the members, same grant-plane load: steady state is only the
  // periodic multicast, whose cost is independent of the cohort size.
  EXPECT_GT(handled[0], 0u);
  EXPECT_LE(handled[1], 2 * handled[0]);
}

TEST(SwarmTest, PlainLeasesServeLocallyThenRefetchAtExpiry) {
  SwarmClusterOptions options = FastOptions();
  options.installed = false;
  options.num_members = 40;
  options.num_servers = 1;
  options.term = Duration::Seconds(2);
  options.swarm.read_period = Duration::Millis(500);
  SwarmCluster cluster(options);
  cluster.RunFor(Duration::Seconds(10));

  const SwarmStats& s = cluster.swarm().stats();
  // No multicast renewals on this plane: members re-fetch when the
  // per-file lease runs out, so fetches exceed the initial one-per-member
  // but stay well below one-per-read.
  EXPECT_EQ(s.renewals, 0u);
  EXPECT_EQ(s.multicasts_seen, 0u);
  EXPECT_GT(s.remote_fetches, 40u);
  EXPECT_GT(s.local_reads, s.remote_fetches);
  EXPECT_EQ(cluster.TotalViolations(), 0u);
}

TEST(SwarmTest, ZeroTermBaselineNeverServesLocally) {
  SwarmClusterOptions options = FastOptions();
  options.installed = false;
  options.zero_term = true;
  options.num_members = 40;
  options.num_servers = 1;
  options.swarm.read_period = Duration::Seconds(1);
  SwarmCluster cluster(options);
  cluster.RunFor(Duration::Seconds(10));

  const SwarmStats& s = cluster.swarm().stats();
  EXPECT_GT(s.reads, 0u);
  EXPECT_EQ(s.local_reads, 0u);
  EXPECT_EQ(s.remote_fetches, s.reads - s.coalesced_reads);
  EXPECT_EQ(s.renewals, 0u);
  EXPECT_EQ(cluster.TotalViolations(), 0u);
}

TEST(SwarmTest, WriterInvalidatesPlainLeaseCohortViaApprovals) {
  SwarmClusterOptions options = FastOptions();
  options.installed = false;
  options.num_members = 30;
  options.num_servers = 1;
  options.files_per_server = 2;
  options.term = Duration::Seconds(30);
  options.swarm.read_period = Duration::Seconds(1);
  SwarmCluster cluster(options);
  cluster.RunFor(Duration::Seconds(5));  // every member holds a lease

  Result<WriteResult> w = cluster.SyncWriteHome(0, B("edition-2"));
  ASSERT_TRUE(w.ok());
  const SwarmStats& s = cluster.swarm().stats();
  // The server consulted the cohort: ApproveRequests invalidated the
  // members' copies and their relinquish replies unblocked the write.
  EXPECT_GT(s.invalidations, 0u);

  cluster.RunFor(Duration::Seconds(5));
  for (uint32_t m = 0; m < options.num_members; m += 2) {  // home 0's cohort
    EXPECT_EQ(cluster.swarm().version_of(m), w->version) << "member " << m;
  }
  EXPECT_EQ(cluster.TotalViolations(), 0u);
}

TEST(SwarmTest, InstalledWriteToPartitionedCohortDefersThenRevalidates) {
  SwarmClusterOptions options = FastOptions();
  options.num_members = 100;
  options.num_servers = 1;
  options.files_per_server = 2;
  options.term = Duration::Seconds(3);
  options.multicast_period = Duration::Seconds(1);
  options.swarm.read_period = Duration::Seconds(1);
  SwarmCluster cluster(options);
  cluster.RunFor(Duration::Seconds(6));  // warm: all members hold leases

  cluster.PartitionSwarm(true);
  cluster.RunFor(Duration::Seconds(1));
  // The server keeps no per-member state, so it cannot ask the silent
  // cohort to relinquish: the write must wait out the advertised window.
  TimePoint issued = cluster.sim().Now();
  Result<WriteResult> w = cluster.SyncWriteHome(0, B("partitioned-write"));
  ASSERT_TRUE(w.ok());
  EXPECT_GE(cluster.sim().Now() - issued, Duration::Seconds(2));

  cluster.PartitionSwarm(false);
  cluster.RunFor(Duration::Seconds(10));
  const SwarmStats& s = cluster.swarm().stats();
  // Healed members saw a renewal arrive after their lease had lapsed --
  // a write could have slipped into the gap (one did) -- so they marked
  // themselves suspect and revalidated before serving locally again.
  EXPECT_GT(s.suspects_marked, 0u);
  for (uint32_t m = 0; m < options.num_members; m += 2) {  // home 0's cohort
    EXPECT_EQ(cluster.swarm().version_of(m), w->version) << "member " << m;
  }
  EXPECT_EQ(cluster.TotalViolations(), 0u);
}

TEST(SwarmTest, AdmissionControlShedsLockstepBurstWithBoundedBacklog) {
  SwarmClusterOptions options = FastOptions();
  options.installed = false;
  options.zero_term = true;  // every read is grant work at the server
  options.num_members = 200;
  options.num_servers = 1;
  options.files_per_server = 1;
  options.server.grant_queue_limit = 4;
  options.server.grant_drain_rate = 50.0;
  // Deliberate thundering herd: one bucket means the whole population
  // fires in the same tick instead of phase-staggering.
  options.swarm.read_buckets = 1;
  options.swarm.read_period = Duration::Seconds(5);
  options.swarm.max_retries = 30;
  SwarmCluster cluster(options);
  cluster.RunFor(Duration::Seconds(20));

  const ServerStats& server = cluster.server(0).stats();
  EXPECT_GT(server.grants_shed, 0u);
  EXPECT_LE(server.grant_backlog_peak, 4u);
  const SwarmStats& s = cluster.swarm().stats();
  // Shed members backed off (jittered, per-member deterministic) and the
  // retries spread out enough for the drain to absorb them.
  EXPECT_GT(s.unavailable_backoffs, 0u);
  EXPECT_GT(s.remote_fetches, 0u);
  EXPECT_EQ(s.failed_reads, 0u);
  EXPECT_EQ(s.timeouts, 0u);
  EXPECT_EQ(cluster.TotalViolations(), 0u);
}

TEST(SwarmTest, PerMemberFootprintStaysWithinIssueBudget) {
  SwarmClusterOptions options = FastOptions();
  options.num_members = 20000;
  options.num_servers = 2;
  SwarmCluster cluster(options);
  cluster.RunFor(Duration::Seconds(10));

  // The SoA core is a couple dozen bytes; the issue's whole-process budget
  // is 256 (asserted on RSS by bench_swarm, cross-checked here on the
  // array's own accounting).
  EXPECT_LE(cluster.swarm().ApproxBytesPerMember(), 64u);
  // Pooled slots recycle: nothing in flight once the cohort is leased.
  EXPECT_EQ(cluster.swarm().pending_fetches(), 0u);
  EXPECT_EQ(cluster.TotalViolations(), 0u);
}

TEST(SwarmTest, ConcurrentReadsForOneMemberCoalesceOntoOneSlot) {
  SwarmClusterOptions options = FastOptions();
  options.num_members = 4;
  options.num_servers = 1;
  // Push the bucket driver past the test horizon so only manual DoRead
  // calls issue reads.
  options.swarm.read_period = Duration::Seconds(1000);
  SwarmCluster cluster(options);
  SwarmClientArray& swarm = cluster.swarm();

  swarm.DoRead(0);
  swarm.DoRead(0);
  EXPECT_EQ(swarm.pending_fetches(), 1u);
  EXPECT_EQ(swarm.stats().remote_fetches, 1u);
  EXPECT_EQ(swarm.stats().coalesced_reads, 1u);

  cluster.RunFor(Duration::Seconds(1));
  EXPECT_EQ(swarm.pending_fetches(), 0u);
  EXPECT_EQ(swarm.version_of(0), 1u);
  EXPECT_TRUE(swarm.HasValidLease(0));
  EXPECT_EQ(cluster.TotalViolations(), 0u);
}

}  // namespace
}  // namespace leases
