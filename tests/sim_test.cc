// Unit tests for the discrete-event simulator and the deterministic RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/sim/rng.h"
#include "src/sim/simulator.h"

namespace leases {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAfter(Duration::Millis(30), [&]() { order.push_back(3); });
  sim.ScheduleAfter(Duration::Millis(10), [&]() { order.push_back(1); });
  sim.ScheduleAfter(Duration::Millis(20), [&]() { order.push_back(2); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), TimePoint::Epoch() + Duration::Millis(30));
}

TEST(SimulatorTest, SameTimeEventsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAfter(Duration::Millis(5), [&, i]() { order.push_back(i); });
  }
  sim.RunUntilIdle();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventId id = sim.ScheduleAfter(Duration::Millis(5), [&]() { ran = true; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // double cancel
  sim.RunUntilIdle();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CancelAfterFireReturnsFalse) {
  Simulator sim;
  EventId id = sim.ScheduleAfter(Duration::Millis(1), []() {});
  sim.RunUntilIdle();
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SimulatorTest, RunUntilAdvancesTimeEvenWhenIdle) {
  Simulator sim;
  sim.RunUntil(TimePoint::Epoch() + Duration::Seconds(5));
  EXPECT_EQ(sim.Now(), TimePoint::Epoch() + Duration::Seconds(5));
  sim.RunFor(Duration::Seconds(2));
  EXPECT_EQ(sim.Now(), TimePoint::Epoch() + Duration::Seconds(7));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  bool late_ran = false;
  sim.ScheduleAfter(Duration::Seconds(10), [&]() { late_ran = true; });
  sim.RunUntil(TimePoint::Epoch() + Duration::Seconds(5));
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunFor(Duration::Seconds(10));
  EXPECT_TRUE(late_ran);
}

TEST(SimulatorTest, ScheduleIntoPastClampsToNow) {
  Simulator sim;
  sim.RunFor(Duration::Seconds(10));
  TimePoint fired;
  sim.ScheduleAt(TimePoint::Epoch() + Duration::Seconds(1),
                 [&]() { fired = sim.Now(); });
  sim.RunUntilIdle();
  EXPECT_EQ(fired, TimePoint::Epoch() + Duration::Seconds(10));
}

TEST(SimulatorTest, EventsScheduledDuringExecutionRun) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&]() {
    if (++depth < 100) {
      sim.ScheduleAfter(Duration::Micros(1), chain);
    }
  };
  sim.ScheduleAfter(Duration::Micros(1), chain);
  sim.RunUntilIdle();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.executed_events(), 100u);
}

TEST(SimulatorTest, StepExecutesExactlyOneEvent) {
  Simulator sim;
  int count = 0;
  sim.ScheduleAfter(Duration::Millis(1), [&]() { ++count; });
  sim.ScheduleAfter(Duration::Millis(2), [&]() { ++count; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, StepSkipsCancelledEvents) {
  Simulator sim;
  int count = 0;
  EventId a = sim.ScheduleAfter(Duration::Millis(1), [&]() { ++count; });
  sim.ScheduleAfter(Duration::Millis(2), [&]() { ++count; });
  sim.Cancel(a);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.Now(), TimePoint::Epoch() + Duration::Millis(2));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
  Rng c(124);
  EXPECT_NE(Rng(123).NextU64(), c.NextU64());
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedIsInRangeAndRoughlyUniform) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t v = rng.NextBounded(10);
    ASSERT_LT(v, 10u);
    counts[v]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 100);
  }
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(55);
  Rng child = parent.Fork();
  // The child stream differs from the parent's continued stream.
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (parent.NextU64() != child.NextU64()) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

class ExponentialMoments : public ::testing::TestWithParam<double> {};

TEST_P(ExponentialMoments, MeanMatchesRate) {
  double rate = GetParam();
  Rng rng(static_cast<uint64_t>(rate * 1000) + 3);
  double sum = 0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    double x = rng.NextExponential(rate);
    ASSERT_GE(x, 0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, 1.0 / rate, 0.02 / rate);
}

INSTANTIATE_TEST_SUITE_P(Rates, ExponentialMoments,
                         ::testing::Values(0.04, 0.864, 2.0, 10.0, 100.0));

class PoissonMoments : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMoments, MeanAndVarianceMatch) {
  double mean = GetParam();
  Rng rng(static_cast<uint64_t>(mean * 100) + 17);
  double sum = 0;
  double sumsq = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    double x = static_cast<double>(rng.NextPoisson(mean));
    sum += x;
    sumsq += x * x;
  }
  double m = sum / kDraws;
  double var = sumsq / kDraws - m * m;
  EXPECT_NEAR(m, mean, 0.05 * mean + 0.02);
  EXPECT_NEAR(var, mean, 0.10 * mean + 0.05);  // Poisson: var == mean
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonMoments,
                         ::testing::Values(0.1, 1.0, 8.0, 50.0, 200.0));

TEST(RngTest, GaussianMoments) {
  Rng rng(31);
  double sum = 0;
  double sumsq = 0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    double x = rng.NextGaussian();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.01);
  EXPECT_NEAR(sumsq / kDraws, 1.0, 0.02);
}

}  // namespace
}  // namespace leases
