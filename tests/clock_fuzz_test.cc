// Randomized clock-drift property test: the Section 5 correctness condition
// quantified. With every host's drift bounded so that |rate-1| * term stays
// within the epsilon allowance, arbitrary workloads produce zero violations;
// with a grossly fast server clock, violations are possible (and observed
// over the seed sweep).
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "src/core/sim_cluster.h"
#include "src/sim/rng.h"
#include "src/workload/v_config.h"

namespace leases {
namespace {

constexpr size_t kClients = 4;
constexpr int kTermSeconds = 10;

// Runs a shared-file read/write mix and returns oracle violations.
uint64_t RunWithClocks(ClockModel server_clock,
                       std::vector<ClockModel> client_clocks, uint64_t seed) {
  ClusterOptions options =
      MakeVClusterOptions(Duration::Seconds(kTermSeconds), kClients, seed);
  options.server_clock = server_clock;
  options.client_clocks = std::move(client_clocks);
  SimCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("v0"));
  Rng rng(seed);
  uint64_t wseq = 0;
  std::function<void(size_t)> ops = [&](size_t c) {
    cluster.sim().ScheduleAfter(rng.NextExponentialDuration(1.0), [&, c]() {
      if (rng.NextBernoulli(0.2)) {
        cluster.client(c).Write(file, Bytes("w" + std::to_string(++wseq)),
                                [](Result<WriteResult>) {});
      } else {
        cluster.client(c).Read(file, [](Result<ReadResult>) {});
      }
      ops(c);
    });
  };
  for (size_t c = 0; c < kClients; ++c) {
    ops(c);
  }
  cluster.RunFor(Duration::Seconds(400));
  return cluster.oracle().violations();
}

class BoundedDriftFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BoundedDriftFuzz, WithinEpsilonDriftIsAlwaysSafe) {
  // epsilon = 100 ms over a 10 s term allows |rate-1| <= 1% with a wide
  // margin (we also budget the transit allowance). Draw random drifts and
  // skews within half that bound for every host.
  Rng rng(GetParam());
  auto random_model = [&rng]() {
    double rate = 1.0 + (rng.NextDouble() - 0.5) * 0.008;  // +/-0.4%
    Duration skew = Duration::Millis(
        static_cast<int64_t>((rng.NextDouble() - 0.5) * 7200000));  // +/-1h
    return ClockModel{skew, rate};
  };
  std::vector<ClockModel> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.push_back(random_model());
  }
  uint64_t violations = RunWithClocks(random_model(), clients, GetParam());
  EXPECT_EQ(violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundedDriftFuzz,
                         ::testing::Range<uint64_t>(1, 11));

TEST(UnboundedDriftFuzz, GrosslyFastServerEventuallyViolates) {
  // The negative control: a 30%-fast server clock breaks the assumption
  // badly enough that some schedule in the sweep must produce a stale read.
  // (Any single run may get lucky; the sweep must not.)
  uint64_t total = 0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    total += RunWithClocks(ClockModel::Drifting(1.3), {}, seed);
  }
  EXPECT_GT(total, 0u);
}

TEST(UnboundedDriftFuzz, GrosslySlowServerNeverViolates) {
  // Slow server clocks are the safe direction regardless of magnitude.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    EXPECT_EQ(RunWithClocks(ClockModel::Drifting(0.7), {}, seed), 0u)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace leases
