// EngineConfig validation and the MakeServerEngine factory: unsupported
// configurations must fail with a descriptive Status at construction time,
// and every supported shape must come up through the one factory.
#include <gtest/gtest.h>

#include <string>

#include "src/core/sim_cluster.h"
#include "src/workload/v_config.h"

namespace leases {
namespace {

bool RejectedWith(const EngineConfig& config, const std::string& needle) {
  Status status = config.Validate();
  if (status.ok()) {
    return false;
  }
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  return status.error().message.find(needle) != std::string::npos;
}

TEST(EngineConfigTest, DefaultsValidate) {
  EngineConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.num_shards = 8;
  EXPECT_TRUE(config.Validate().ok());
  config.num_shards = 1;
  config.replica.num_replicas = 3;
  EXPECT_TRUE(config.Validate().ok());
}

// The historical wart: a sharded server with installed_optimization used to
// die on a LEASES_CHECK deep in the constructor. The factory now refuses
// up front, with a message saying *why*.
TEST(EngineConfigTest, InstalledOptimizationWithShardsIsRejectedNotFatal) {
  EngineConfig config;
  config.num_shards = 4;
  config.server.installed_optimization = true;
  EXPECT_TRUE(RejectedWith(config, "key==file routing invariant"));
}

TEST(EngineConfigTest, ShardIncompatibilities) {
  EngineConfig config;
  config.num_shards = 0;
  EXPECT_TRUE(RejectedWith(config, ">= 1"));
  config.num_shards = 65;
  EXPECT_TRUE(RejectedWith(config, "6 bits"));
  config.num_shards = 4;
  config.data_dir = "/tmp/x";
  EXPECT_TRUE(RejectedWith(config, "per-shard memory backends"));
  config.data_dir.clear();
  // Sharded serving composes with the replicated authority plane.
  config.replica.num_replicas = 3;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(EngineConfigTest, ReplicaIncompatibilities) {
  EngineConfig config;
  config.replica.num_replicas = 8;
  EXPECT_TRUE(RejectedWith(config, "<= 7"));
  config.replica.num_replicas = 3;
  config.server.persist_lease_records = true;
  EXPECT_TRUE(RejectedWith(config, "single-node recovery"));
  config.server.persist_lease_records = false;
  config.server.installed_optimization = true;
  EXPECT_TRUE(RejectedWith(config, "do not transfer across failover"));
  config.server.installed_optimization = false;
  config.data_dir = "/tmp/x";
  EXPECT_TRUE(RejectedWith(config, "diskless"));
  config.data_dir.clear();
  EXPECT_TRUE(config.Validate().ok());
}

TEST(EngineConfigTest, ReplicaTimingKnobsValidated) {
  EngineConfig config;
  config.replica.num_replicas = 3;
  config.replica.renew_interval = config.replica.authority_term;
  EXPECT_TRUE(RejectedWith(config, "at most half"));
  config.replica.renew_interval = Duration::Millis(400);
  config.replica.suspect_timeout = Duration::Millis(100);
  EXPECT_TRUE(RejectedWith(config, "two renewal intervals"));
  config.replica.suspect_timeout = Duration::Millis(1300);
  config.replica.acquire_retry = Duration::Zero();
  EXPECT_TRUE(RejectedWith(config, "acquire_retry"));
}

TEST(EngineFactoryTest, RejectsEnvShapeMismatches) {
  EngineConfig config;
  config.num_shards = 4;
  EngineEnv env;  // no shard environments supplied
  auto sharded = MakeServerEngine(config, std::move(env));
  EXPECT_FALSE(sharded.ok());
  EXPECT_EQ(sharded.code(), ErrorCode::kInvalidArgument);

  EngineConfig rconfig;
  rconfig.replica.num_replicas = 3;
  EngineEnv renv;  // no peers, no serve transport
  auto replicated = MakeServerEngine(rconfig, std::move(renv));
  EXPECT_FALSE(replicated.ok());
  EXPECT_EQ(replicated.code(), ErrorCode::kInvalidArgument);

  EngineEnv penv;  // plain engine with a null environment
  auto plain = MakeServerEngine(EngineConfig{}, std::move(penv));
  EXPECT_FALSE(plain.ok());
  EXPECT_EQ(plain.code(), ErrorCode::kInvalidArgument);
}

// Every cluster shape comes up through the same factory and serves.
TEST(EngineFactoryTest, AllShapesServeThroughTheFactory) {
  struct Case {
    size_t shards;
    size_t replicas;
  };
  for (Case c : {Case{1, 0}, Case{4, 0}, Case{1, 1}, Case{1, 3}, Case{4, 3}}) {
    ClusterOptions options = MakeVClusterOptions(Duration::Seconds(5), 2, 1);
    options.num_shards = c.shards;
    options.replica.num_replicas = c.replicas;
    SimCluster cluster(options);
    FileId f = *cluster.store().CreatePath("/x", FileClass::kNormal,
                                           Bytes("v0"));
    auto read = cluster.SyncRead(0, f);
    ASSERT_TRUE(read.ok()) << "shards=" << c.shards
                           << " replicas=" << c.replicas;
    EXPECT_EQ(Text(read.value().data), "v0");
    ASSERT_TRUE(cluster.SyncWrite(1, f, Bytes("v1")).ok());
    EXPECT_EQ(cluster.oracle().violations(), 0u);
    EXPECT_EQ(cluster.server_stats().writes_committed, 1u);
  }
}

// Stop/Recover/Start through the engine interface is the crash/restart
// cycle every harness uses; the plain engine must preserve the recovery
// window semantics underneath it.
TEST(EngineFactoryTest, EngineLifecycleDrivesRecovery) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(5), 2, 1);
  SimCluster cluster(options);
  FileId f = *cluster.store().CreatePath("/x", FileClass::kNormal,
                                         Bytes("v0"));
  ASSERT_TRUE(cluster.SyncRead(0, f).ok());  // a live grant to honour
  EXPECT_TRUE(cluster.engine().running());
  cluster.CrashServer();
  EXPECT_FALSE(cluster.engine().running());
  cluster.RestartServer();
  EXPECT_TRUE(cluster.engine().running());
  // The restarted engine holds writes for the persisted max term.
  TimePoint before = cluster.sim().Now();
  ASSERT_TRUE(cluster.SyncWrite(1, f, Bytes("v1")).ok());
  EXPECT_GT((cluster.sim().Now() - before).ToSeconds(), 1.0);
  EXPECT_GT(cluster.server_stats().recovery_window.ToMicros(), 0);
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

}  // namespace
}  // namespace leases
