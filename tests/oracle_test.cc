// Unit tests for the consistency oracle's scoring rules.
#include <gtest/gtest.h>

#include "src/core/oracle.h"

namespace leases {
namespace {

TEST(OracleTest, ReadAtOrAboveAckedFloorIsFine) {
  Simulator sim;
  Oracle oracle(&sim);
  oracle.OnCommit(FileId(1), 2);
  oracle.OnAcked(FileId(1), 2);
  Oracle::ReadToken token = oracle.BeginRead(FileId(1), NodeId(5));
  oracle.EndRead(token, 2);
  oracle.EndRead(oracle.BeginRead(FileId(1), NodeId(5)), 3);
  EXPECT_EQ(oracle.violations(), 0u);
  EXPECT_EQ(oracle.reads_checked(), 2u);
}

TEST(OracleTest, ReadBelowAckedFloorIsStale) {
  Simulator sim;
  Oracle oracle(&sim);
  oracle.OnAcked(FileId(1), 5);
  oracle.EndRead(oracle.BeginRead(FileId(1), NodeId(5)), 3);
  EXPECT_EQ(oracle.stale_reads(), 1u);
  EXPECT_EQ(oracle.staleness_total(), 2u);  // 5 - 3
  EXPECT_FALSE(oracle.violation_log().empty());
}

TEST(OracleTest, AppliedButUnackedDoesNotRaiseFloor) {
  // A write that committed at the server but whose ack never reached the
  // writer is not yet observable-required (single-copy equivalence applies
  // to COMPLETED writes).
  Simulator sim;
  Oracle oracle(&sim);
  oracle.OnCommit(FileId(1), 5);
  oracle.EndRead(oracle.BeginRead(FileId(1), NodeId(5)), 3);
  EXPECT_EQ(oracle.violations(), 0u);
  EXPECT_EQ(oracle.commits(), 1u);
}

TEST(OracleTest, FloorCapturedAtReadStartNotCompletion) {
  Simulator sim;
  Oracle oracle(&sim);
  oracle.OnAcked(FileId(1), 1);
  Oracle::ReadToken token = oracle.BeginRead(FileId(1), NodeId(5));
  // A write completes while the read is in flight; returning the older
  // version is still linearizable.
  oracle.OnAcked(FileId(1), 2);
  oracle.EndRead(token, 1);
  EXPECT_EQ(oracle.violations(), 0u);
}

TEST(OracleTest, PerClientVersionRegressionIsFlagged) {
  Simulator sim;
  Oracle oracle(&sim);
  oracle.EndRead(oracle.BeginRead(FileId(1), NodeId(5)), 4);
  oracle.EndRead(oracle.BeginRead(FileId(1), NodeId(5)), 3);
  EXPECT_EQ(oracle.regression_reads(), 1u);
  // A different client seeing 3 first is fine (separate session).
  oracle.EndRead(oracle.BeginRead(FileId(1), NodeId(6)), 3);
  EXPECT_EQ(oracle.regression_reads(), 1u);
}

TEST(OracleTest, FilesAreIndependent) {
  Simulator sim;
  Oracle oracle(&sim);
  oracle.OnAcked(FileId(1), 9);
  oracle.EndRead(oracle.BeginRead(FileId(2), NodeId(5)), 1);
  EXPECT_EQ(oracle.violations(), 0u);
}

TEST(OracleTest, AckedFloorIsMonotone) {
  Simulator sim;
  Oracle oracle(&sim);
  oracle.OnAcked(FileId(1), 5);
  oracle.OnAcked(FileId(1), 3);  // late duplicate ack must not lower it
  oracle.EndRead(oracle.BeginRead(FileId(1), NodeId(5)), 4);
  EXPECT_EQ(oracle.stale_reads(), 1u);
}

TEST(OracleTest, ResetClearsEverything) {
  Simulator sim;
  Oracle oracle(&sim);
  oracle.OnAcked(FileId(1), 5);
  oracle.EndRead(oracle.BeginRead(FileId(1), NodeId(5)), 1);
  EXPECT_GT(oracle.violations(), 0u);
  oracle.Reset();
  EXPECT_EQ(oracle.violations(), 0u);
  EXPECT_EQ(oracle.reads_checked(), 0u);
  EXPECT_TRUE(oracle.violation_log().empty());
  oracle.EndRead(oracle.BeginRead(FileId(1), NodeId(5)), 0);
  EXPECT_EQ(oracle.violations(), 0u);  // floor gone after reset
}

}  // namespace
}  // namespace leases
