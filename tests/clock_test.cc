// Unit tests for the clock substrate: skewed/drifting simulated clocks and
// drift-aware timers.
#include <gtest/gtest.h>

#include "src/clock/sim_clock.h"
#include "src/clock/sim_timer_host.h"
#include "src/clock/system_clock.h"
#include "src/sim/simulator.h"

namespace leases {
namespace {

TEST(SimClockTest, PerfectClockTracksTrueTime) {
  Simulator sim;
  SimClock clock(&sim, ClockModel::Perfect());
  EXPECT_EQ(clock.Now(), TimePoint::Epoch());
  sim.RunFor(Duration::Seconds(5));
  EXPECT_EQ(clock.Now(), TimePoint::Epoch() + Duration::Seconds(5));
}

TEST(SimClockTest, SkewAddsConstantOffset) {
  Simulator sim;
  SimClock clock(&sim, ClockModel::Skewed(Duration::Seconds(100)));
  sim.RunFor(Duration::Seconds(5));
  EXPECT_EQ(clock.Now(), TimePoint::Epoch() + Duration::Seconds(105));
}

TEST(SimClockTest, DriftScalesElapsedTime) {
  Simulator sim;
  SimClock fast(&sim, ClockModel::Drifting(2.0));
  SimClock slow(&sim, ClockModel::Drifting(0.5));
  sim.RunFor(Duration::Seconds(10));
  EXPECT_EQ(fast.Now(), TimePoint::Epoch() + Duration::Seconds(20));
  EXPECT_EQ(slow.Now(), TimePoint::Epoch() + Duration::Seconds(5));
}

TEST(SimClockTest, SetModelIsContinuous) {
  Simulator sim;
  SimClock clock(&sim, ClockModel::Drifting(1.0));
  sim.RunFor(Duration::Seconds(10));
  TimePoint before = clock.Now();
  clock.SetModel(ClockModel::Drifting(2.0));
  // No jump at the switch point...
  EXPECT_EQ(clock.Now(), before);
  // ...but the new rate applies from here on.
  sim.RunFor(Duration::Seconds(5));
  EXPECT_EQ(clock.Now(), before + Duration::Seconds(10));
}

TEST(SimClockTest, LocalToTrueDelayInvertsRate) {
  Simulator sim;
  SimClock fast(&sim, ClockModel::Drifting(2.0));
  // 10 local seconds on a clock running twice as fast = 5 true seconds.
  EXPECT_EQ(fast.LocalToTrueDelay(Duration::Seconds(10)),
            Duration::Seconds(5));
}

TEST(SimTimerHostTest, TimerFiresAfterLocalDelay) {
  Simulator sim;
  SimClock clock(&sim, ClockModel::Perfect());
  SimTimerHost timers(&sim, &clock);
  bool fired = false;
  timers.ScheduleAfter(Duration::Seconds(3), [&]() { fired = true; });
  sim.RunFor(Duration::Seconds(2));
  EXPECT_FALSE(fired);
  sim.RunFor(Duration::Seconds(2));
  EXPECT_TRUE(fired);
}

TEST(SimTimerHostTest, DriftingClockShiftsTimerInTrueTime) {
  Simulator sim;
  SimClock fast(&sim, ClockModel::Drifting(2.0));
  SimTimerHost timers(&sim, &fast);
  TimePoint fired_at;
  timers.ScheduleAfter(Duration::Seconds(10),
                       [&]() { fired_at = sim.Now(); });
  sim.RunUntilIdle();
  // 10 local seconds on a 2x clock elapse after 5 true seconds.
  EXPECT_EQ(fired_at, TimePoint::Epoch() + Duration::Seconds(5));
}

TEST(SimTimerHostTest, CancelSemantics) {
  Simulator sim;
  SimClock clock(&sim, ClockModel::Perfect());
  SimTimerHost timers(&sim, &clock);
  bool fired = false;
  TimerId id = timers.ScheduleAfter(Duration::Seconds(1),
                                    [&]() { fired = true; });
  EXPECT_TRUE(timers.CancelTimer(id));
  EXPECT_FALSE(timers.CancelTimer(id));
  sim.RunUntilIdle();
  EXPECT_FALSE(fired);

  TimerId id2 = timers.ScheduleAfter(Duration::Seconds(1), []() {});
  sim.RunUntilIdle();
  EXPECT_FALSE(timers.CancelTimer(id2));  // already fired
}

TEST(SystemClockTest, MonotonicNonDecreasing) {
  SystemClock clock;
  TimePoint a = clock.Now();
  TimePoint b = clock.Now();
  EXPECT_GE(b, a);
  EXPECT_GE(a, TimePoint::Epoch());
}

}  // namespace
}  // namespace leases
