// Unit tests for the metrics helpers.
#include <gtest/gtest.h>

#include "src/metrics/metrics.h"
#include "src/metrics/table.h"
#include "src/sim/rng.h"

namespace leases {
namespace {

TEST(HistogramTest, BasicStatistics) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0);
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 4.0);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Record(-5.0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
}

TEST(HistogramTest, QuantilesApproximateOrder) {
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    h.Record(rng.NextExponential(1.0));  // mean 1, median ~0.693
  }
  EXPECT_NEAR(h.Quantile(0.5), 0.693, 0.693 * 0.3);
  EXPECT_GT(h.Quantile(0.99), h.Quantile(0.5));
  EXPECT_LE(h.Quantile(1.0), h.Max() + 1e-12);
  EXPECT_NEAR(h.Mean(), 1.0, 0.02);
}

TEST(HistogramTest, DurationsAndSummary) {
  Histogram h;
  h.RecordDuration(Duration::Millis(5));
  h.RecordDuration(Duration::Millis(10));
  EXPECT_NEAR(h.Mean(), 0.0075, 1e-9);
  std::string summary = h.Summary();
  EXPECT_NE(summary.find("n=2"), std::string::npos);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(1.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Max(), 0.0);
}

TEST(MeanVarTest, WelfordMatchesClosedForm) {
  MeanVar mv;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    mv.Record(v);
  }
  EXPECT_DOUBLE_EQ(mv.mean(), 5.0);
  EXPECT_NEAR(mv.variance(), 32.0 / 7.0, 1e-9);
  EXPECT_EQ(mv.count(), 8u);
}

TEST(SeriesTableTest, CsvOutput) {
  SeriesTable table({"a", "b"});
  table.AddRow({1.0, 2.5});
  table.AddRow({3.0, 4.125});
  std::string csv = table.ToCsv();
  EXPECT_EQ(csv, "a,b\n1,2.5\n3,4.125\n");
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.row(1)[1], 4.125);
}

TEST(SeriesTableTest, PrintAlignsColumns) {
  SeriesTable table({"term", "load"});
  table.AddRow({10, 0.105});
  char buffer[256] = {};
  FILE* mem = fmemopen(buffer, sizeof(buffer), "w");
  table.Print(mem, 3);
  std::fclose(mem);
  std::string out(buffer);
  EXPECT_NE(out.find("term"), std::string::npos);
  EXPECT_NE(out.find("0.105"), std::string::npos);
}

TEST(CounterBagTest, AddSetGetAndInsertionOrder) {
  CounterBag bag;
  bag.Add("replays");
  bag.Add("replays", 2);
  bag.Set("appends", 10);
  bag.Set("appends", 7);  // Set overwrites, Add accumulates
  bag.Add("compactions", 0);
  EXPECT_EQ(bag.Get("replays"), 3u);
  EXPECT_EQ(bag.Get("appends"), 7u);
  EXPECT_EQ(bag.Get("never-touched"), 0u);
  EXPECT_TRUE(bag.Has("compactions"));
  EXPECT_FALSE(bag.Has("never-touched"));
  EXPECT_EQ(bag.size(), 3u);
  // Insertion order, zeros skipped by default.
  EXPECT_EQ(bag.Summary(), "replays=3 appends=7");
  EXPECT_EQ(bag.Summary(/*include_zero=*/true),
            "replays=3 appends=7 compactions=0");
}

TEST(CounterBagTest, EmptyBagSummarizesToNothing) {
  CounterBag bag;
  EXPECT_EQ(bag.size(), 0u);
  EXPECT_EQ(bag.Summary(), "");
  bag.Set("only-zero", 0);
  EXPECT_EQ(bag.Summary(), "");
  EXPECT_EQ(bag.Summary(true), "only-zero=0");
}

}  // namespace
}  // namespace leases
