// The replicated lease authority over real UDP sockets: three replica
// processes-worth of state machines on localhost, a real holder crash, and
// a client that survives the failover by re-pointing the virtual address
// (the test's stand-in for the VIP/ARP move a deployment would do).
//
// Real-clock timing is inherently noisy, so every bound here is generous:
// the assertions pin the *shape* of failover (a standby takes over, the
// write hold comes from the inherited bound, data flows again), not tight
// latencies -- those are measured in the deterministic sim suites.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <string>
#include <thread>

#include "src/runtime/node.h"
#include "src/runtime/replica_node.h"

namespace leases {
namespace {

std::vector<uint8_t> B(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

bool WaitFor(const std::function<bool()>& cond,
             Duration timeout = Duration::Seconds(20)) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(timeout.ToMicros());
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return cond();
}

ClientParams RuntimeClientParams() {
  ClientParams params;
  params.transit_allowance = Duration::Millis(50);
  params.epsilon = Duration::Millis(50);
  params.request_timeout = Duration::Millis(300);
  return params;
}

// A single-replica authority is a transparent shell: it serves immediately
// over the same two-socket wiring, with no election round-trips.
TEST(RuntimeReplica, SingleReplicaShellServesOverUdp) {
  EngineConfig config;
  config.term = Duration::Seconds(5);
  config.replica.num_replicas = 1;
  RuntimeReplicaServer server(NodeId(1), 0, config);
  FileId file = *server.store().CreatePath("/data/hello", FileClass::kNormal,
                                           B("world"));
  ASSERT_TRUE(server.Start(/*cold_boot=*/true).ok());

  RuntimeClient client(NodeId(10), NodeId(1), server.store().root(),
                       RuntimeClientParams());
  ASSERT_TRUE(client.Start(server.serve_port()).ok());
  server.AddClientPeer(NodeId(10), client.port());
  server.RegisterClient(NodeId(10));

  Result<ReadResult> read = client.Read(file, Duration::Seconds(10));
  ASSERT_TRUE(read.ok()) << read.error().ToString();
  EXPECT_EQ(std::string(read->data.begin(), read->data.end()), "world");
  Result<WriteResult> write =
      client.Write(file, B("there"), Duration::Seconds(10));
  ASSERT_TRUE(write.ok()) << write.error().ToString();
  EXPECT_EQ(server.stats().writes_committed, 1u);

  client.Stop();
  server.Stop();
}

// The acceptance shape on real sockets: replica 0 seeds a cold cluster and
// serves; killing it promotes a standby well inside the plain server's
// max-granted-term recovery wait, and the client continues after
// re-pointing the virtual address at the new holder.
TEST(RuntimeReplica, ThreeReplicaFailoverPromotesStandby) {
  EngineConfig config;
  config.term = Duration::Seconds(10);  // grants are capped far below this
  config.replica.num_replicas = 3;

  std::vector<std::unique_ptr<RuntimeReplicaServer>> replicas;
  FileId file;
  for (size_t r = 0; r < 3; ++r) {
    auto replica =
        std::make_unique<RuntimeReplicaServer>(NodeId(1), r, config);
    // The lease plane replicates authority, not file data: seed each
    // replica's independent store identically.
    file = *replica->store().CreatePath("/data/hello", FileClass::kNormal,
                                        B("world"));
    ASSERT_TRUE(replica->Start(/*cold_boot=*/true).ok());
    replicas.push_back(std::move(replica));
  }
  for (size_t a = 0; a < 3; ++a) {
    for (size_t b = 0; b < 3; ++b) {
      if (a != b) {
        replicas[a]->AddReplicaPeer(b, replicas[b]->authority_port());
      }
    }
  }

  // The seed replica acquires once the peer wiring is up.
  ASSERT_TRUE(WaitFor([&] { return replicas[0]->is_holder(); }))
      << "seed replica never acquired the authority lease";

  RuntimeClient client(NodeId(10), NodeId(1), replicas[0]->store().root(),
                       RuntimeClientParams());
  ASSERT_TRUE(client.Start(replicas[0]->serve_port()).ok());
  for (auto& replica : replicas) {
    replica->AddClientPeer(NodeId(10), client.port());
    replica->RegisterClient(NodeId(10));
  }

  Result<ReadResult> read = client.Read(file, Duration::Seconds(10));
  ASSERT_TRUE(read.ok()) << read.error().ToString();
  EXPECT_EQ(std::string(read->data.begin(), read->data.end()), "world");

  // Kill the holder. A standby must acquire from the surviving quorum well
  // inside the 10 s term a single server would have to wait out.
  auto crash = std::chrono::steady_clock::now();
  replicas[0]->Stop();
  RuntimeReplicaServer* successor = nullptr;
  ASSERT_TRUE(WaitFor([&] {
    for (size_t r = 1; r < 3; ++r) {
      if (replicas[r]->is_holder()) {
        successor = replicas[r].get();
        return true;
      }
    }
    return false;
  })) << "no standby took over after the holder crash";
  auto failover = std::chrono::steady_clock::now() - crash;
  EXPECT_LT(failover, std::chrono::seconds(10))
      << "failover took as long as single-server recovery";

  // The VIP move: re-point the virtual server id at the new holder.
  client.transport().AddPeer(NodeId(1), successor->serve_port());

  // The first write pays the inherited grant bound (the deferred
  // inheritance hold), not the max-granted-term wait, then commits.
  Result<WriteResult> write =
      client.Write(file, B("after-failover"), Duration::Seconds(30));
  ASSERT_TRUE(write.ok()) << write.error().ToString();
  EXPECT_GT(successor->last_inherited_bound().ToMicros(), 0);
  EXPECT_LT(successor->last_inherited_bound(), Duration::Seconds(10));
  EXPECT_EQ(successor->stats().writes_committed, 1u);

  Result<ReadResult> again = client.Read(file, Duration::Seconds(10));
  ASSERT_TRUE(again.ok()) << again.error().ToString();
  EXPECT_EQ(std::string(again->data.begin(), again->data.end()),
            "after-failover");

  client.Stop();
  for (auto& replica : replicas) {
    replica->Stop();
  }
}

}  // namespace
}  // namespace leases
