// Unit tests for LeaseServer edge cases: write dedup/replay, recovery
// pathologies, starvation avoidance, version conflicts, unicast approvals
// and max-term persistence.
#include <gtest/gtest.h>

#include "src/core/sim_cluster.h"
#include "src/workload/v_config.h"

namespace leases {
namespace {

TEST(LeaseServerTest, RetriedWriteCommitsExactlyOnce) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 1);
  options.net.loss_prob = 0.5;
  options.net.seed = 33;
  options.client.request_timeout = Duration::Millis(300);
  options.client.max_retries = 40;
  SimCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("v1"));
  for (int i = 0; i < 20; ++i) {
    Result<WriteResult> w = cluster.SyncWrite(
        0, file, Bytes("w" + std::to_string(i)), Duration::Seconds(60));
    ASSERT_TRUE(w.ok()) << i;
    // Version advances by exactly one per logical write, regardless of how
    // many retransmissions the lossy network forced.
    EXPECT_EQ(w->version, static_cast<uint64_t>(i + 2));
  }
  EXPECT_GT(cluster.client(0).stats().retransmits, 0u);
  EXPECT_EQ(cluster.server().stats().writes_committed, 20u);
}

TEST(LeaseServerTest, MaxTermPersistedOnlyWhenItGrows) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 1);
  SimCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("x"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  cluster.RunFor(Duration::Seconds(11));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  cluster.RunFor(Duration::Seconds(11));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  // Many grants, ONE durable write -- the paper's rationale for not keeping
  // "a more detailed record of leases on persistent storage".
  EXPECT_EQ(cluster.server().stats().leases_granted, 3u);
  // (write_count is on the DurableMeta owned by the cluster; verify through
  // the recovery window after a crash instead.)
  cluster.CrashServer();
  cluster.RestartServer();
  EXPECT_EQ(cluster.server().stats().recovery_window, Duration::Seconds(10));
}

TEST(LeaseServerTest, InfiniteTermMakesRecoveryPathological) {
  // The paper's implicit warning: recovery delay scales with the maximum
  // granted term. An infinite term means writes block forever after a
  // restart.
  ClusterOptions options = MakeVClusterOptions(Duration::Infinite(), 2);
  SimCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("x"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  cluster.CrashServer();
  cluster.RestartServer();
  EXPECT_TRUE(cluster.server().InRecovery());
  Result<WriteResult> w =
      cluster.SyncWrite(1, file, Bytes("y"), Duration::Seconds(120));
  EXPECT_FALSE(w.ok());  // still recovering; the write can never commit
  EXPECT_TRUE(cluster.server().InRecovery());
  // Reads still work -- availability is lost for writes only.
  EXPECT_TRUE(cluster.SyncRead(1, file).ok());
}

TEST(LeaseServerTest, StarvationGuardLiftsAfterCommit) {
  SimCluster cluster(MakeVClusterOptions(Duration::Seconds(10), 3));
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("x"));
  ASSERT_TRUE(cluster.SyncRead(1, file).ok());
  cluster.PartitionClient(1, true);
  bool done = false;
  cluster.client(0).Write(file, Bytes("y"),
                          [&](Result<WriteResult>) { done = true; });
  cluster.RunFor(Duration::Seconds(1));
  // While pending: zero-term grant.
  ASSERT_TRUE(cluster.SyncRead(2, file, Duration::Seconds(2)).ok());
  EXPECT_FALSE(cluster.client(2).HasValidLease(file));
  cluster.RunFor(Duration::Seconds(12));
  ASSERT_TRUE(done);
  // After commit: normal grants resume.
  ASSERT_TRUE(cluster.SyncRead(2, file).ok());
  EXPECT_TRUE(cluster.client(2).HasValidLease(file));
}

TEST(LeaseServerTest, UnicastApprovalsStillCorrect) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 4);
  options.server.multicast_approvals = false;
  SimCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("v1"));
  for (size_t c = 1; c < 4; ++c) {
    ASSERT_TRUE(cluster.SyncRead(c, file).ok());
  }
  ASSERT_TRUE(cluster.SyncWrite(0, file, Bytes("v2")).ok());
  EXPECT_EQ(cluster.server().stats().approvals_received, 3u);
  EXPECT_EQ(cluster.oracle().violations(), 0u);
  // Unicast costs 2(S-1) = 6 consistency messages at the server for the
  // approval round (3 sent + 3 received).
  const NodeMessageStats& stats =
      cluster.network().stats(cluster.server_id());
  EXPECT_EQ(stats.HandledByClass(MessageClass::kConsistency), 6u);
}

TEST(LeaseServerTest, BlindWriteIgnoresVersionsOptimisticWriteChecked) {
  SimCluster cluster(MakeVClusterOptions(Duration::Seconds(10), 2));
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("v1"));
  ASSERT_TRUE(cluster.SyncWrite(0, file, Bytes("v2")).ok());
  // The public Write API issues blind writes; optimistic concurrency is
  // exercised at the protocol level via a hand-built request.
  // Handled here through two racing writers: both blind, both succeed,
  // versions serialize.
  Result<WriteResult> a = cluster.SyncWrite(0, file, Bytes("a"));
  Result<WriteResult> b = cluster.SyncWrite(1, file, Bytes("b"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->version, a->version + 1);
}

TEST(LeaseServerTest, WriteToMissingFileRejected) {
  SimCluster cluster(MakeVClusterOptions(Duration::Seconds(10), 1));
  Result<WriteResult> w = cluster.SyncWrite(0, FileId(999), Bytes("x"));
  EXPECT_FALSE(w.ok());
  EXPECT_EQ(w.code(), ErrorCode::kNotFound);
  EXPECT_EQ(cluster.server().stats().writes_rejected, 1u);
}

TEST(LeaseServerTest, WritePermissionRejectedBeforeApprovalProtocol) {
  SimCluster cluster(MakeVClusterOptions(Duration::Seconds(10), 2));
  FileId file = *cluster.store().CreatePath("/readonly", FileClass::kNormal,
                                            Bytes("x"), kModeRead,
                                            NodeId(99));
  ASSERT_TRUE(cluster.SyncRead(1, file).ok());  // someone holds a lease
  TimePoint start = cluster.sim().Now();
  Result<WriteResult> w = cluster.SyncWrite(0, file, Bytes("y"));
  EXPECT_FALSE(w.ok());
  EXPECT_EQ(w.code(), ErrorCode::kPermissionDenied);
  // Rejected immediately -- no approval round, no waiting out leases.
  EXPECT_LT(cluster.sim().Now() - start, Duration::Millis(50));
  EXPECT_EQ(cluster.server().stats().approval_rounds, 0u);
}

TEST(LeaseServerTest, ApprovalRetriesStopAtCommit) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 2);
  options.server.approval_retry_interval = Duration::Millis(100);
  options.net.loss_prob = 0.6;
  options.net.seed = 9;
  options.client.request_timeout = Duration::Millis(300);
  options.client.max_retries = 60;
  SimCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("v1"));
  ASSERT_TRUE(cluster.SyncRead(1, file, Duration::Seconds(60)).ok());
  ASSERT_TRUE(
      cluster.SyncWrite(0, file, Bytes("v2"), Duration::Seconds(60)).ok());
  uint64_t retries = cluster.server().stats().approval_retries;
  cluster.RunFor(Duration::Seconds(5));
  // No retry fires after the write committed.
  EXPECT_EQ(cluster.server().stats().approval_retries, retries);
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(LeaseServerTest, ServerLearnsClientsFromTraffic) {
  SimCluster cluster(MakeVClusterOptions(Duration::Seconds(10), 3));
  // RegisterClient was called by the harness for all three.
  EXPECT_EQ(cluster.server().known_clients(), 3u);
}

TEST(LeaseServerTest, DirectoryWriteRunsApprovalProtocolToo) {
  // Renaming under a directory someone caches requires their approval --
  // naming data is leased like anything else.
  SimCluster cluster(MakeVClusterOptions(Duration::Seconds(10), 2));
  ASSERT_TRUE(cluster.store()
                  .CreatePath("/proj/file", FileClass::kNormal, Bytes("x"))
                  .ok());
  ASSERT_TRUE(cluster.SyncOpen(0, "/proj/file").ok());  // caches /proj datum
  FileId dir = *cluster.store().Resolve("/proj");

  Result<ReadResult> dir_data = cluster.SyncRead(1, dir);
  ASSERT_TRUE(dir_data.ok());
  auto entries = DecodeDirectory(dir_data->data);
  (*entries)[0].name = "renamed";
  ASSERT_TRUE(cluster.SyncWrite(1, dir, EncodeDirectory(*entries)).ok());
  EXPECT_GE(cluster.server().stats().approval_rounds, 1u);
  EXPECT_GE(cluster.client(0).stats().invalidations, 1u);
}

}  // namespace
}  // namespace leases
