// Calibration identities: the analytic model must reproduce every number
// Section 3.2 of the paper quotes for the V parameters. These tests are the
// ground truth anchoring the figure benches (see DESIGN.md section 3).
#include <gtest/gtest.h>

#include "src/analytic/model.h"

namespace leases {
namespace {

TEST(Calibration, TenSecondTermGivesTenPercentConsistencyTraffic) {
  // "At S = 1, a term of 10 seconds reduces the consistency traffic to 10%
  // of that for a zero term."
  LeaseModel model(SystemParams::VSystem(1));
  double rel = model.RelativeConsistencyLoad(Duration::Seconds(10));
  EXPECT_NEAR(rel, 0.10, 0.01);
}

TEST(Calibration, TotalTrafficReduction27PercentAtS1) {
  // "consistency accounts for 30% of the server traffic ... the actual
  // benefit is a 27% reduction in total server traffic"
  LeaseModel model(SystemParams::VSystem(1));
  double total = model.RelativeTotalLoad(Duration::Seconds(10));
  EXPECT_NEAR(1.0 - total, 0.27, 0.01);
}

TEST(Calibration, FourPointFivePercentOverInfiniteAtS1) {
  // "... to a level just 4.5% above that for infinite term."
  LeaseModel model(SystemParams::VSystem(1));
  double over = model.TotalLoadOverInfinite(Duration::Seconds(10));
  EXPECT_NEAR(over, 0.045, 0.005);
}

TEST(Calibration, TwentyPercentReductionAtS10) {
  // "At S = 10, total server traffic is 20% less than for a zero term"
  LeaseModel model(SystemParams::VSystem(10));
  double total = model.RelativeTotalLoad(Duration::Seconds(10));
  EXPECT_NEAR(1.0 - total, 0.20, 0.01);
}

TEST(Calibration, FourPointOnePercentOverInfiniteAtS10) {
  // "... and 4.1% over that for an infinite term."
  LeaseModel model(SystemParams::VSystem(10));
  double over = model.TotalLoadOverInfinite(Duration::Seconds(10));
  EXPECT_NEAR(over, 0.041, 0.005);
}

TEST(Calibration, WanDegradation10Point1PercentAt10s) {
  // Figure 3: "a 10 second term degrades response by 10.1% over using an
  // infinite term"
  LeaseModel model(SystemParams::Wan(1));
  double deg = model.ResponseDegradationVsInfinite(Duration::Seconds(10));
  EXPECT_NEAR(deg, 0.101, 0.008);
}

TEST(Calibration, WanDegradation3Point6PercentAt30s) {
  // "... and a 30 second term degrades it by 3.6%."
  LeaseModel model(SystemParams::Wan(1));
  double deg = model.ResponseDegradationVsInfinite(Duration::Seconds(30));
  EXPECT_NEAR(deg, 0.036, 0.004);
}

TEST(Calibration, ReadWriteRatioNearlyOrderOfMagnitudeAboveUnix) {
  // "our ratio of reads to writes is almost an order of magnitude higher
  // than those reported elsewhere" -- Unix traces reported ~2-3.
  SystemParams p = SystemParams::VSystem(1);
  double ratio = p.reads_per_sec / p.writes_per_sec;
  EXPECT_GT(ratio, 15.0);
  EXPECT_LT(ratio, 30.0);
}

TEST(Calibration, MessageTimesAreMilliseconds) {
  // "message times (including t_w) in the range of milliseconds"
  LeaseModel model(SystemParams::VSystem(40));
  EXPECT_LT(model.ExtensionDelay(), Duration::Millis(10));
  EXPECT_LT(model.ApprovalTime(), Duration::Millis(50));
  EXPECT_EQ(model.ExtensionDelay(), Duration::Millis(5));
}

TEST(Calibration, WanRoundTripIs100Ms) {
  LeaseModel model(SystemParams::Wan(1));
  EXPECT_EQ(model.ExtensionDelay(), Duration::Millis(100));
}

}  // namespace
}  // namespace leases
