// End-to-end behaviour of the lease protocol on the simulated cluster:
// grants, cache hits, extensions, write approval, starvation avoidance,
// write-sharing callbacks -- the mechanics of Section 2 of the paper.
#include <gtest/gtest.h>

#include "src/core/sim_cluster.h"

namespace leases {
namespace {

ClusterOptions BaseOptions(size_t clients = 2) {
  ClusterOptions options;
  options.num_clients = clients;
  options.term = Duration::Seconds(10);
  // Allowance comfortably above m_prop + 2*m_proc = 2.5 ms.
  options.client.transit_allowance = Duration::Millis(5);
  options.client.epsilon = Duration::Millis(100);
  return options;
}

TEST(CoreBasic, ReadFetchesDataAndLease) {
  SimCluster cluster(BaseOptions());
  FileId file =
      *cluster.store().CreatePath("/src/main.c", FileClass::kNormal,
                                  Bytes("int main(){}"));
  Result<ReadResult> r = cluster.SyncRead(0, file);
  ASSERT_TRUE(r.ok()) << r.error().ToString();
  EXPECT_EQ(Text(r->data), "int main(){}");
  EXPECT_FALSE(r->from_cache);
  EXPECT_TRUE(cluster.client(0).HasValidLease(file));
  EXPECT_EQ(cluster.server().stats().leases_granted, 1u);
}

TEST(CoreBasic, SecondReadWithinTermIsLocal) {
  SimCluster cluster(BaseOptions());
  FileId file = *cluster.store().CreatePath("/bin/latex",
                                            FileClass::kNormal, Bytes("TeX"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  cluster.RunFor(Duration::Seconds(5));
  Result<ReadResult> r = cluster.SyncRead(0, file);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->from_cache);
  EXPECT_EQ(cluster.client(0).stats().local_reads, 1u);
  // Only the first read reached the server.
  EXPECT_EQ(cluster.server().stats().reads_served, 1u);
}

TEST(CoreBasic, ReadAfterExpiryExtendsLease) {
  SimCluster cluster(BaseOptions());
  FileId file = *cluster.store().CreatePath("/bin/latex",
                                            FileClass::kNormal, Bytes("TeX"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  cluster.RunFor(Duration::Seconds(11));
  EXPECT_FALSE(cluster.client(0).HasValidLease(file));
  Result<ReadResult> r = cluster.SyncRead(0, file);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->from_cache);
  EXPECT_EQ(cluster.client(0).stats().extend_requests, 1u);
  EXPECT_EQ(cluster.server().stats().extension_requests, 1u);
  // Data unchanged: the extension carried no payload refresh.
  EXPECT_EQ(cluster.client(0).stats().refreshed_items, 0u);
  EXPECT_TRUE(cluster.client(0).HasValidLease(file));
}

TEST(CoreBasic, ExtensionRefreshesStaleData) {
  SimCluster cluster(BaseOptions());
  FileId file = *cluster.store().CreatePath("/etc/conf", FileClass::kNormal,
                                            Bytes("v1"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  cluster.RunFor(Duration::Seconds(11));  // client 0's lease expires
  ASSERT_TRUE(cluster.SyncWrite(1, file, Bytes("v2")).ok());
  Result<ReadResult> r = cluster.SyncRead(0, file);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Text(r->data), "v2");
  EXPECT_EQ(cluster.client(0).stats().refreshed_items, 1u);
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(CoreBasic, WriteToUnsharedFileCommitsImmediately) {
  SimCluster cluster(BaseOptions());
  FileId file = *cluster.store().CreatePath("/home/a/doc", FileClass::kNormal,
                                            Bytes("draft"));
  Result<WriteResult> w = cluster.SyncWrite(0, file, Bytes("final"));
  ASSERT_TRUE(w.ok()) << w.error().ToString();
  EXPECT_EQ(w->version, 2u);
  EXPECT_EQ(cluster.server().stats().writes_immediate, 1u);
  EXPECT_EQ(cluster.server().stats().approval_rounds, 0u);
  EXPECT_EQ(Text(cluster.store().Find(file)->data), "final");
}

TEST(CoreBasic, WritersOwnLeaseGivesImplicitApproval) {
  // Footnote 5: an unshared file held by the writer itself commits with a
  // single unicast request-response; no callback to the writer.
  SimCluster cluster(BaseOptions());
  FileId file = *cluster.store().CreatePath("/home/a/doc", FileClass::kNormal,
                                            Bytes("draft"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  ASSERT_TRUE(cluster.client(0).HasValidLease(file));
  Result<WriteResult> w = cluster.SyncWrite(0, file, Bytes("final"));
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(cluster.server().stats().approval_rounds, 0u);
  EXPECT_EQ(cluster.server().stats().writes_immediate, 1u);
  // The writer keeps its cached copy, now current.
  Result<ReadResult> r = cluster.SyncRead(0, file);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->from_cache);
  EXPECT_EQ(Text(r->data), "final");
}

TEST(CoreBasic, SharedWriteRequiresApprovalAndInvalidates) {
  SimCluster cluster(BaseOptions(3));
  FileId file = *cluster.store().CreatePath("/shared/plan", FileClass::kNormal,
                                            Bytes("v1"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  ASSERT_TRUE(cluster.SyncRead(1, file).ok());
  ASSERT_TRUE(cluster.SyncRead(2, file).ok());

  Result<WriteResult> w = cluster.SyncWrite(0, file, Bytes("v2"));
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(cluster.server().stats().approval_rounds, 1u);
  EXPECT_EQ(cluster.server().stats().approvals_received, 2u);
  EXPECT_EQ(cluster.server().stats().writes_deferred, 1u);
  // Holders invalidated their copies when approving.
  EXPECT_FALSE(cluster.client(1).HasCached(file));
  EXPECT_FALSE(cluster.client(2).HasCached(file));
  EXPECT_EQ(cluster.client(1).stats().invalidations, 1u);

  // Their next read sees the new data.
  Result<ReadResult> r = cluster.SyncRead(1, file);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Text(r->data), "v2");
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(CoreBasic, ApprovalWaitIsShortComparedToTerm) {
  SimCluster cluster(BaseOptions(2));
  FileId file = *cluster.store().CreatePath("/shared/x", FileClass::kNormal,
                                            Bytes("v1"));
  ASSERT_TRUE(cluster.SyncRead(1, file).ok());
  TimePoint before = cluster.sim().Now();
  ASSERT_TRUE(cluster.SyncWrite(0, file, Bytes("v2")).ok());
  Duration wait = cluster.sim().Now() - before;
  // Approval is a multicast round-trip (milliseconds), not a lease term.
  EXPECT_LT(wait, Duration::Millis(50));
  EXPECT_EQ(cluster.server().stats().writes_expired_commit, 0u);
}

TEST(CoreBasic, NoNewLeasesWhileWriteWaits) {
  // Footnote 1: to avoid starving writes, the server grants no new leases on
  // a file with a waiting write. A partitioned holder forces the wait.
  SimCluster cluster(BaseOptions(3));
  FileId file = *cluster.store().CreatePath("/shared/y", FileClass::kNormal,
                                            Bytes("v1"));
  ASSERT_TRUE(cluster.SyncRead(1, file).ok());
  cluster.PartitionClient(1, true);  // holder unreachable

  bool write_done = false;
  cluster.client(0).Write(file, Bytes("v2"),
                          [&](Result<WriteResult> r) {
                            ASSERT_TRUE(r.ok());
                            write_done = true;
                          });
  cluster.RunFor(Duration::Seconds(1));
  EXPECT_FALSE(write_done);
  ASSERT_TRUE(cluster.server().HasPendingWrite(file));

  // A third client reading now gets the (pre-write) data but no lease.
  Result<ReadResult> r = cluster.SyncRead(2, file, Duration::Seconds(1));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Text(r->data), "v1");
  EXPECT_FALSE(cluster.client(2).HasValidLease(file));
  EXPECT_GE(cluster.server().stats().zero_term_grants, 1u);

  // Once the unreachable holder's lease expires, the write commits.
  cluster.RunFor(Duration::Seconds(12));
  EXPECT_TRUE(write_done);
  EXPECT_EQ(cluster.server().stats().writes_expired_commit, 1u);
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(CoreBasic, QueuedWritesCommitInOrder) {
  SimCluster cluster(BaseOptions(3));
  FileId file = *cluster.store().CreatePath("/shared/z", FileClass::kNormal,
                                            Bytes("v1"));
  ASSERT_TRUE(cluster.SyncRead(2, file).ok());
  cluster.PartitionClient(2, true);

  int done = 0;
  std::vector<uint64_t> versions;
  cluster.client(0).Write(file, Bytes("a"), [&](Result<WriteResult> r) {
    ASSERT_TRUE(r.ok());
    versions.push_back(r->version);
    ++done;
  });
  cluster.client(1).Write(file, Bytes("b"), [&](Result<WriteResult> r) {
    ASSERT_TRUE(r.ok());
    versions.push_back(r->version);
    ++done;
  });
  cluster.RunFor(Duration::Seconds(15));
  ASSERT_EQ(done, 2);
  EXPECT_EQ(versions[0], 2u);
  EXPECT_EQ(versions[1], 3u);
  EXPECT_EQ(Text(cluster.store().Find(file)->data), "b");
}

TEST(CoreBasic, ZeroTermPolicyChecksEveryRead) {
  ClusterOptions options = BaseOptions();
  options.term = Duration::Zero();
  SimCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("x"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  // No lease: every read after the first is a (cheap, not-modified)
  // consistency check; none are local.
  EXPECT_EQ(cluster.client(0).stats().local_reads, 0u);
  EXPECT_EQ(cluster.server().stats().extension_requests, 2u);
  EXPECT_EQ(cluster.server().stats().zero_term_grants, 3u);
  // Zero term makes every write immediate -- no one can hold a lease.
  ASSERT_TRUE(cluster.SyncWrite(1, file, Bytes("y")).ok());
  EXPECT_EQ(cluster.server().stats().writes_immediate, 1u);
}

TEST(CoreBasic, InfiniteTermNeverReExtends) {
  ClusterOptions options = BaseOptions();
  options.term = Duration::Infinite();
  SimCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("x"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  cluster.RunFor(Duration::Seconds(3600));
  Result<ReadResult> r = cluster.SyncRead(0, file);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->from_cache);
  EXPECT_EQ(cluster.server().stats().extension_requests, 0u);
  // Writes by others still work: the holder is reachable and approves.
  ASSERT_TRUE(cluster.SyncWrite(1, file, Bytes("y")).ok());
  EXPECT_EQ(cluster.server().stats().approvals_received, 1u);
}

TEST(CoreBasic, NotModifiedSuppressesPayload) {
  SimCluster cluster(BaseOptions());
  FileId file = *cluster.store().CreatePath(
      "/big", FileClass::kNormal, std::vector<uint8_t>(4096, 0xAB));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  cluster.RunFor(Duration::Seconds(11));
  // Extension of an unmodified file must not resend the 4 KB payload.
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  EXPECT_EQ(cluster.client(0).stats().refreshed_items, 0u);
}

TEST(CoreBasic, TemporaryFilesNeverWriteThrough) {
  SimCluster cluster(BaseOptions());
  FileId file = *cluster.store().CreatePath("/tmp/cc.o",
                                            FileClass::kTemporary, Bytes(""));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  uint64_t writes_before = cluster.server().stats().writes_received;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.SyncWrite(0, file, Bytes("obj")).ok());
  }
  EXPECT_EQ(cluster.server().stats().writes_received, writes_before);
  EXPECT_EQ(cluster.client(0).stats().temp_local_writes, 10u);
  Result<ReadResult> r = cluster.SyncRead(0, file);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->from_cache);
  EXPECT_EQ(Text(r->data), "obj");
}

TEST(CoreBasic, OpenResolvesThroughCachedDirectories) {
  SimCluster cluster(BaseOptions());
  ASSERT_TRUE(cluster.store()
                  .CreatePath("/usr/bin/latex", FileClass::kInstalled,
                              Bytes("TeX"))
                  .ok());
  Result<OpenResult> open = cluster.SyncOpen(0, "/usr/bin/latex");
  ASSERT_TRUE(open.ok()) << open.error().ToString();
  EXPECT_EQ(open->file_class, FileClass::kInstalled);

  uint64_t served = cluster.server().stats().reads_served;
  // Repeated open: every directory datum is cached under a valid lease.
  Result<OpenResult> again = cluster.SyncOpen(0, "/usr/bin/latex");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->file, open->file);
  EXPECT_EQ(cluster.server().stats().reads_served, served);
}

TEST(CoreBasic, RenameIsAWriteToTheDirectoryDatum) {
  SimCluster cluster(BaseOptions(2));
  FileId file = *cluster.store().CreatePath("/proj/old", FileClass::kNormal,
                                            Bytes("data"));
  ASSERT_TRUE(cluster.SyncOpen(0, "/proj/old").ok());
  FileId dir = *cluster.store().Resolve("/proj");

  // Client 1 renames by rewriting the directory datum through the protocol.
  Result<ReadResult> dir_data = cluster.SyncRead(1, dir);
  ASSERT_TRUE(dir_data.ok());
  auto entries = DecodeDirectory(dir_data->data);
  ASSERT_TRUE(entries.has_value());
  (*entries)[0].name = "new";
  Result<WriteResult> w =
      cluster.SyncWrite(1, dir, EncodeDirectory(*entries));
  ASSERT_TRUE(w.ok());

  // Client 0's cached binding was invalidated via the approval callback, so
  // the old name no longer resolves and the new one does.
  EXPECT_FALSE(cluster.SyncOpen(0, "/proj/old").ok());
  Result<OpenResult> open = cluster.SyncOpen(0, "/proj/new");
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(open->file, file);
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(CoreBasic, PermissionDeniedOnUnreadableFile) {
  SimCluster cluster(BaseOptions());
  FileId file = *cluster.store().CreatePath("/secret", FileClass::kNormal,
                                            Bytes("x"), /*mode=*/0,
                                            /*who=*/NodeId(99));
  Result<ReadResult> r = cluster.SyncRead(0, file);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kPermissionDenied);
}

TEST(CoreBasic, OracleSeesNoViolationsInHealthyRun) {
  SimCluster cluster(BaseOptions(4));
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("0"));
  for (int round = 0; round < 20; ++round) {
    for (size_t c = 0; c < 4; ++c) {
      ASSERT_TRUE(cluster.SyncRead(c, file).ok());
    }
    ASSERT_TRUE(cluster
                    .SyncWrite(round % 4, file,
                               Bytes(std::to_string(round)))
                    .ok());
    cluster.RunFor(Duration::Seconds(1));
  }
  EXPECT_GT(cluster.oracle().reads_checked(), 0u);
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

}  // namespace
}  // namespace leases
