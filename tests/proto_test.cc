// Unit tests for the wire protocol: full round-trips for every message,
// truncation safety and garbage-input robustness.
#include <gtest/gtest.h>

#include "src/proto/messages.h"
#include "src/sim/rng.h"

namespace leases {
namespace {

template <typename T>
T RoundTrip(const T& message) {
  std::vector<uint8_t> bytes = EncodePacket(Packet(message));
  std::optional<Packet> decoded = DecodePacket(bytes);
  EXPECT_TRUE(decoded.has_value());
  const T* out = std::get_if<T>(&*decoded);
  EXPECT_NE(out, nullptr);
  return *out;
}

TEST(ProtoTest, ReadRequestRoundTrip) {
  ReadRequest m{RequestId(7), FileId(42), 13, 987654321};
  ReadRequest out = RoundTrip(m);
  EXPECT_EQ(out.req, m.req);
  EXPECT_EQ(out.file, m.file);
  EXPECT_EQ(out.have_version, 13u);
  EXPECT_EQ(out.clock_us, 987654321u);
}

TEST(ProtoTest, ReadReplyRoundTrip) {
  ReadReply m;
  m.req = RequestId(8);
  m.file = FileId(9);
  m.status = ErrorCode::kPermissionDenied;
  m.version = 77;
  m.not_modified = true;
  m.file_class = FileClass::kInstalled;
  m.lease = LeaseGrant{LeaseKey(9), Duration::Seconds(10)};
  m.data = {1, 2, 3, 4};
  ReadReply out = RoundTrip(m);
  EXPECT_EQ(out.status, ErrorCode::kPermissionDenied);
  EXPECT_EQ(out.version, 77u);
  EXPECT_TRUE(out.not_modified);
  EXPECT_EQ(out.file_class, FileClass::kInstalled);
  EXPECT_EQ(out.lease.key, LeaseKey(9));
  EXPECT_EQ(out.lease.term, Duration::Seconds(10));
  EXPECT_EQ(out.data, m.data);
}

TEST(ProtoTest, InfiniteTermSurvivesTheWire) {
  ReadReply m;
  m.lease = LeaseGrant{LeaseKey(1), Duration::Infinite()};
  ReadReply out = RoundTrip(m);
  EXPECT_TRUE(out.lease.term.IsInfinite());
}

TEST(ProtoTest, WriteRequestRoundTrip) {
  WriteRequest m{RequestId(3), FileId(5), 11, true, {9, 9, 9}};
  WriteRequest out = RoundTrip(m);
  EXPECT_EQ(out.base_version, 11u);
  EXPECT_TRUE(out.flush);
  EXPECT_EQ(out.data, m.data);
}

TEST(ProtoTest, WriteReplyRoundTrip) {
  WriteReply m{RequestId(3), FileId(5), ErrorCode::kConflict, 12};
  WriteReply out = RoundTrip(m);
  EXPECT_EQ(out.status, ErrorCode::kConflict);
  EXPECT_EQ(out.version, 12u);
}

TEST(ProtoTest, ExtendRequestRoundTrip) {
  ExtendRequest m;
  m.req = RequestId(4);
  for (uint64_t i = 1; i <= 50; ++i) {
    m.items.push_back(ExtendItem{FileId(i), i * 3});
  }
  m.clock_us = 555666777;
  ExtendRequest out = RoundTrip(m);
  ASSERT_EQ(out.items.size(), 50u);
  EXPECT_EQ(out.items[49].file, FileId(50));
  EXPECT_EQ(out.items[49].version, 150u);
  EXPECT_EQ(out.clock_us, 555666777u);
}

TEST(ProtoTest, ExtendReplyRoundTrip) {
  ExtendReply m;
  m.req = RequestId(5);
  ExtendReplyItem fresh;
  fresh.file = FileId(1);
  fresh.version = 10;
  fresh.lease = LeaseGrant{LeaseKey(1), Duration::Seconds(10)};
  ExtendReplyItem stale;
  stale.file = FileId(2);
  stale.version = 20;
  stale.refreshed = true;
  stale.data = {5, 5};
  stale.file_class = FileClass::kDirectory;
  ExtendReplyItem missing;
  missing.file = FileId(3);
  missing.status = ErrorCode::kNotFound;
  m.items = {fresh, stale, missing};
  ExtendReply out = RoundTrip(m);
  ASSERT_EQ(out.items.size(), 3u);
  EXPECT_FALSE(out.items[0].refreshed);
  EXPECT_TRUE(out.items[1].refreshed);
  EXPECT_EQ(out.items[1].data, (std::vector<uint8_t>{5, 5}));
  EXPECT_EQ(out.items[1].file_class, FileClass::kDirectory);
  EXPECT_EQ(out.items[2].status, ErrorCode::kNotFound);
}

TEST(ProtoTest, ApprovalMessagesRoundTrip) {
  ApproveRequest req{99, FileId(4), LeaseKey(4)};
  ApproveRequest req_out = RoundTrip(req);
  EXPECT_EQ(req_out.write_seq, 99u);
  EXPECT_EQ(req_out.key, LeaseKey(4));

  ApproveReply rep{99, FileId(4), true};
  ApproveReply rep_out = RoundTrip(rep);
  EXPECT_TRUE(rep_out.relinquish_key);
}

TEST(ProtoTest, RelinquishAndInstalledExtendRoundTrip) {
  Relinquish m{{LeaseKey(1), LeaseKey(2), LeaseKey(3)}};
  EXPECT_EQ(RoundTrip(m).keys.size(), 3u);

  InstalledExtend ie{Duration::Seconds(10), {LeaseKey(7), LeaseKey(8)}};
  InstalledExtend ie_out = RoundTrip(ie);
  EXPECT_EQ(ie_out.term, Duration::Seconds(10));
  EXPECT_EQ(ie_out.keys, (std::vector<LeaseKey>{LeaseKey(7), LeaseKey(8)}));
}

TEST(ProtoTest, PingPongRoundTrip) {
  EXPECT_EQ(RoundTrip(Ping{RequestId(1)}).req, RequestId(1));
  EXPECT_EQ(RoundTrip(Pong{RequestId(2)}).req, RequestId(2));
}

TEST(ProtoTest, PacketNamesAreUnique) {
  EXPECT_EQ(PacketName(Packet(ReadRequest{})), "ReadRequest");
  EXPECT_EQ(PacketName(Packet(InstalledExtend{})), "InstalledExtend");
  EXPECT_NE(PacketName(Packet(WriteRequest{})),
            PacketName(Packet(WriteReply{})));
}

TEST(ProtoTest, EmptyAndUnknownTypeRejected) {
  EXPECT_FALSE(DecodePacket({}).has_value());
  std::vector<uint8_t> unknown = {0xEE, 1, 2, 3};
  EXPECT_FALSE(DecodePacket(unknown).has_value());
}

TEST(ProtoTest, EveryTruncationOfEveryMessageIsRejectedSafely) {
  std::vector<Packet> packets = {
      Packet(ReadRequest{RequestId(1), FileId(2), 3}),
      Packet(WriteRequest{RequestId(1), FileId(2), 3, false, {1, 2, 3}}),
      Packet(ApproveRequest{5, FileId(2), LeaseKey(2)}),
      Packet(Relinquish{{LeaseKey(1)}}),
      Packet(InstalledExtend{Duration::Seconds(1), {LeaseKey(1)}}),
  };
  ReadReply reply;
  reply.data = {1, 2, 3, 4, 5};
  reply.lease = LeaseGrant{LeaseKey(1), Duration::Seconds(5)};
  packets.push_back(Packet(reply));
  ExtendRequest extend;
  extend.items = {{FileId(1), 1}, {FileId(2), 2}};
  packets.push_back(Packet(extend));

  for (const Packet& packet : packets) {
    std::vector<uint8_t> bytes = EncodePacket(packet);
    for (size_t keep = 0; keep < bytes.size(); ++keep) {
      std::vector<uint8_t> cut(bytes.begin(),
                               bytes.begin() + static_cast<ptrdiff_t>(keep));
      // Must neither crash nor mis-decode to a full packet of the same
      // byte length's worth of fields. nullopt is the required outcome.
      EXPECT_FALSE(DecodePacket(cut).has_value())
          << PacketName(packet) << " truncated to " << keep;
    }
  }
}

// --- Randomized property tests over every message type -------------------
//
// The simulator's typed fast path no longer exercises the codec per
// message, so these are the codec's safety net: every MsgType, randomized
// payloads, and every truncation of every valid datagram.

std::vector<uint8_t> RandomBytes(Rng& rng, size_t max_len) {
  std::vector<uint8_t> out(rng.NextBounded(max_len + 1));
  for (auto& b : out) {
    b = static_cast<uint8_t>(rng.NextU64());
  }
  return out;
}

LeaseGrant RandomLease(Rng& rng) {
  return LeaseGrant{LeaseKey(rng.NextU64()),
                    Duration::Micros(static_cast<int64_t>(
                        rng.NextBounded(1 << 30)))};
}

std::vector<LeaseKey> RandomKeys(Rng& rng, size_t max_n) {
  std::vector<LeaseKey> keys(rng.NextBounded(max_n + 1));
  for (auto& k : keys) {
    k = LeaseKey(rng.NextU64());
  }
  return keys;
}

std::vector<uint32_t> RandomMembers(Rng& rng, size_t max_n) {
  std::vector<uint32_t> members(rng.NextBounded(max_n + 1));
  for (auto& m : members) {
    m = static_cast<uint32_t>(rng.NextU64());
  }
  return members;
}

// One random packet of each of the 16 wire types, index-selected so the
// test provably covers the whole variant.
Packet RandomPacket(Rng& rng, size_t type_index) {
  switch (type_index) {
    case 0:
      return ReadRequest{RequestId(rng.NextU64()), FileId(rng.NextU64()),
                         rng.NextU64(), rng.NextU64()};
    case 1: {
      ReadReply m;
      m.req = RequestId(rng.NextU64());
      m.file = FileId(rng.NextU64());
      m.status = static_cast<ErrorCode>(rng.NextBounded(8));
      m.version = rng.NextU64();
      m.not_modified = rng.NextBernoulli(0.5);
      m.file_class = static_cast<FileClass>(rng.NextBounded(4));
      m.lease = RandomLease(rng);
      m.data = RandomBytes(rng, 64);
      return m;
    }
    case 2: {
      WriteRequest m;
      m.req = RequestId(rng.NextU64());
      m.file = FileId(rng.NextU64());
      m.base_version = rng.NextU64();
      m.flush = rng.NextBernoulli(0.5);
      m.data = RandomBytes(rng, 64);
      return m;
    }
    case 3:
      return WriteReply{RequestId(rng.NextU64()), FileId(rng.NextU64()),
                        static_cast<ErrorCode>(rng.NextBounded(8)),
                        rng.NextU64()};
    case 4: {
      ExtendRequest m;
      m.req = RequestId(rng.NextU64());
      m.items.resize(rng.NextBounded(9));
      for (auto& item : m.items) {
        item.file = FileId(rng.NextU64());
        item.version = rng.NextU64();
      }
      m.clock_us = rng.NextU64();
      return m;
    }
    case 5: {
      ExtendReply m;
      m.req = RequestId(rng.NextU64());
      m.items.resize(rng.NextBounded(5));
      for (auto& item : m.items) {
        item.file = FileId(rng.NextU64());
        item.status = static_cast<ErrorCode>(rng.NextBounded(8));
        item.version = rng.NextU64();
        item.refreshed = rng.NextBernoulli(0.5);
        item.file_class = static_cast<FileClass>(rng.NextBounded(4));
        item.lease = RandomLease(rng);
        item.data = RandomBytes(rng, 32);
      }
      return m;
    }
    case 6:
      return ApproveRequest{rng.NextU64(), FileId(rng.NextU64()),
                            LeaseKey(rng.NextU64())};
    case 7:
      return ApproveReply{rng.NextU64(), FileId(rng.NextU64()),
                          rng.NextBernoulli(0.5)};
    case 8:
      return Relinquish{RandomKeys(rng, 8)};
    case 9:
      return InstalledExtend{
          Duration::Micros(static_cast<int64_t>(rng.NextBounded(1 << 30))),
          RandomKeys(rng, 8)};
    case 10:
      return Ping{RequestId(rng.NextU64())};
    case 11:
      return Pong{RequestId(rng.NextU64())};
    case 12:
      return AuthorityPrepare{rng.NextU64()};
    case 13: {
      AuthorityPromise m;
      m.ballot = rng.NextU64();
      m.ok = rng.NextBernoulli(0.5);
      m.promised = rng.NextU64();
      m.holder = static_cast<uint32_t>(rng.NextU64());
      m.holder_remaining =
          Duration::Micros(static_cast<int64_t>(rng.NextBounded(1 << 30)));
      m.bound_remaining =
          Duration::Micros(static_cast<int64_t>(rng.NextBounded(1 << 30)));
      m.config_epoch = rng.NextU64();
      m.members = RandomMembers(rng, 7);
      m.next_members = RandomMembers(rng, 7);
      return m;
    }
    case 14: {
      AuthorityPropose m;
      m.ballot = rng.NextU64();
      m.owner = static_cast<uint32_t>(rng.NextU64());
      m.term = Duration::Micros(static_cast<int64_t>(rng.NextBounded(1 << 30)));
      m.grant_horizon =
          Duration::Micros(static_cast<int64_t>(rng.NextBounded(1 << 30)));
      m.config_epoch = rng.NextU64();
      m.members = RandomMembers(rng, 7);
      m.next_members = RandomMembers(rng, 7);
      size_t locked = rng.NextBounded(6);
      for (size_t i = 0; i < locked; ++i) {
        m.write_locked.push_back(rng.NextU64());
      }
      m.write_locked_overflow = rng.NextBernoulli(0.2);
      return m;
    }
    default: {
      AuthorityAccept m;
      m.ballot = rng.NextU64();
      m.ok = rng.NextBernoulli(0.5);
      m.promised = rng.NextU64();
      m.config_epoch = rng.NextU64();
      m.members = RandomMembers(rng, 7);
      m.next_members = RandomMembers(rng, 7);
      return m;
    }
  }
}

TEST(ProtoTest, RandomizedRoundTripCoversEveryType) {
  constexpr size_t kNumTypes = std::variant_size_v<Packet>;
  static_assert(kNumTypes == 16, "update RandomPacket for new types");
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    for (size_t type = 0; type < kNumTypes; ++type) {
      Packet packet = RandomPacket(rng, type);
      std::vector<uint8_t> bytes = EncodePacket(packet);
      std::optional<Packet> decoded = DecodePacket(bytes);
      ASSERT_TRUE(decoded.has_value()) << PacketName(packet);
      EXPECT_EQ(decoded->index(), packet.index());
      // Field-level equality via the canonical encoding: the codec writes
      // every field deterministically, so byte equality of the re-encoding
      // is packet equality.
      EXPECT_EQ(EncodePacket(*decoded), bytes) << PacketName(packet);
    }
  }
}

TEST(ProtoTest, EveryPrefixOfARandomizedDatagramFailsCleanly) {
  constexpr size_t kNumTypes = std::variant_size_v<Packet>;
  Rng rng(78);
  for (int trial = 0; trial < 20; ++trial) {
    for (size_t type = 0; type < kNumTypes; ++type) {
      Packet packet = RandomPacket(rng, type);
      std::vector<uint8_t> bytes = EncodePacket(packet);
      for (size_t keep = 0; keep < bytes.size(); ++keep) {
        std::vector<uint8_t> cut(
            bytes.begin(), bytes.begin() + static_cast<ptrdiff_t>(keep));
        EXPECT_FALSE(DecodePacket(cut).has_value())
            << PacketName(packet) << " truncated to " << keep;
      }
    }
  }
}

TEST(ProtoTest, RandomGarbageNeverCrashesTheDecoder) {
  Rng rng(2024);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> garbage(rng.NextBounded(200));
    for (auto& b : garbage) {
      b = static_cast<uint8_t>(rng.NextU64());
    }
    // Valid-looking type bytes make the body decoder work hardest (tags
    // 1-10 and the authority plane's 20-23).
    if (!garbage.empty()) {
      uint64_t pick = rng.NextBounded(14);
      garbage[0] = static_cast<uint8_t>(pick < 10 ? pick + 1 : pick + 10);
    }
    (void)DecodePacket(garbage);  // must not crash or overread
  }
  SUCCEED();
}

}  // namespace
}  // namespace leases
