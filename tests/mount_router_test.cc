// Multi-server tests: two independent lease servers on one simulated
// network, a client with one cache per server, and the MountRouter
// dispatching by path prefix. Also demonstrates wiring the library's
// building blocks by hand (no SimCluster).
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>

#include "src/clock/sim_clock.h"
#include "src/clock/sim_timer_host.h"
#include "src/core/lease_server.h"
#include "src/core/mount_router.h"
#include "src/core/oracle.h"
#include "src/core/swarm_cluster.h"
#include "src/core/term_policy.h"
#include "src/net/sim_network.h"

namespace leases {
namespace {

std::vector<uint8_t> B(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

// Hand-built two-server, one-client world.
struct TwoServerWorld {
  Simulator sim;
  // One oracle per primary: FileIds are scoped to their server, so a shared
  // oracle would conflate /home's file 3 with /usr's file 3.
  Oracle home_oracle{&sim};
  Oracle usr_oracle{&sim};
  SimNetwork net{&sim, NetworkParams{}};
  FixedTermPolicy policy{Duration::Seconds(10)};

  struct ServerRig {
    FileStore store;
    DurableMeta meta;
    std::unique_ptr<SimClock> clock;
    std::unique_ptr<SimTimerHost> timers;
    std::unique_ptr<LeaseServer> server;
  };
  ServerRig home;  // NodeId 1
  ServerRig usr;   // NodeId 2

  // The client (NodeId 3) runs one CacheClient per server, sharing its
  // clock and timers -- exactly how a real workstation would.
  std::unique_ptr<SimClock> client_clock;
  std::unique_ptr<SimTimerHost> client_timers;
  std::unique_ptr<CacheClient> home_cache;
  std::unique_ptr<CacheClient> usr_cache;
  MountRouter router;

  // Demultiplexes server replies to the right per-server cache.
  struct Demux : PacketHandler {
    CacheClient* from_home = nullptr;
    CacheClient* from_usr = nullptr;
    void HandlePacket(NodeId from, MessageClass cls,
                      std::span<const uint8_t> bytes) override {
      if (from == NodeId(1)) {
        from_home->HandlePacket(from, cls, bytes);
      } else if (from == NodeId(2)) {
        from_usr->HandlePacket(from, cls, bytes);
      }
    }
  } demux;

  TwoServerWorld() {
    auto make_server = [this](ServerRig& rig, NodeId id, Oracle* oracle) {
      rig.clock = std::make_unique<SimClock>(&sim, ClockModel::Perfect());
      rig.timers = std::make_unique<SimTimerHost>(&sim, rig.clock.get());
      SimTransport* transport = net.AttachNode(id, nullptr);
      rig.server = std::make_unique<LeaseServer>(
          id, &rig.store, &rig.meta, transport, rig.clock.get(),
          rig.timers.get(), &policy, ServerParams{}, oracle);
      net.ReplaceHandler(id, rig.server.get());
    };
    make_server(home, NodeId(1), &home_oracle);
    make_server(usr, NodeId(2), &usr_oracle);

    client_clock = std::make_unique<SimClock>(&sim, ClockModel::Perfect());
    client_timers = std::make_unique<SimTimerHost>(&sim, client_clock.get());
    SimTransport* transport = net.AttachNode(NodeId(3), &demux);
    ClientParams params;
    params.transit_allowance = Duration::Millis(5);
    home_cache = std::make_unique<CacheClient>(
        NodeId(3), NodeId(1), home.store.root(), transport,
        client_clock.get(), client_timers.get(), params, &home_oracle);
    usr_cache = std::make_unique<CacheClient>(
        NodeId(3), NodeId(2), usr.store.root(), transport,
        client_clock.get(), client_timers.get(), params, &usr_oracle);
    demux.from_home = home_cache.get();
    demux.from_usr = usr_cache.get();

    router.Mount("/", home_cache.get());
    router.Mount("/usr", usr_cache.get());
  }
};

TEST(MountRouterTest, RoutingRules) {
  MountRouter router;
  CacheClient* a = reinterpret_cast<CacheClient*>(0x1);
  CacheClient* b = reinterpret_cast<CacheClient*>(0x2);
  router.Mount("/", a);
  router.Mount("/usr", b);

  auto root = router.Route("/etc/passwd");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->client, a);
  EXPECT_EQ(root->relative_path, "/etc/passwd");

  auto usr = router.Route("/usr/bin/cc");
  ASSERT_TRUE(usr.ok());
  EXPECT_EQ(usr->client, b);
  EXPECT_EQ(usr->relative_path, "/bin/cc");

  // Exact prefix match maps to the mount's root.
  auto usr_root = router.Route("/usr");
  ASSERT_TRUE(usr_root.ok());
  EXPECT_EQ(usr_root->client, b);
  EXPECT_EQ(usr_root->relative_path, "/");

  // "/usrx" is NOT under "/usr".
  auto usrx = router.Route("/usrx");
  ASSERT_TRUE(usrx.ok());
  EXPECT_EQ(usrx->client, a);

  EXPECT_FALSE(router.Route("relative").ok());
}

TEST(MountRouterTest, NoRootMountMeansUncoveredPathsFail) {
  MountRouter router;
  CacheClient* b = reinterpret_cast<CacheClient*>(0x2);
  router.Mount("/usr", b);
  EXPECT_TRUE(router.Route("/usr/bin").ok());
  EXPECT_EQ(router.Route("/home/me").code(), ErrorCode::kNotFound);
}

TEST(MountRouterTest, TwoServersEndToEnd) {
  TwoServerWorld world;
  ASSERT_TRUE(world.home.store
                  .CreatePath("/home/alice/notes", FileClass::kNormal,
                              B("my notes"))
                  .ok());
  ASSERT_TRUE(world.usr.store
                  .CreatePath("/bin/latex", FileClass::kInstalled,
                              B("TeX"))
                  .ok());

  // Open + read a file on each server through the router.
  std::optional<std::string> notes;
  world.router.Open("/home/alice/notes",
                    [&](Result<std::pair<MountFile, OpenResult>> r) {
                      ASSERT_TRUE(r.ok());
                      MountRouter::Read(r->first, [&](Result<ReadResult> rr) {
                        ASSERT_TRUE(rr.ok());
                        notes = std::string(rr->data.begin(), rr->data.end());
                      });
                    });
  std::optional<std::string> latex;
  std::optional<MountFile> latex_file;
  world.router.Open("/usr/bin/latex",
                    [&](Result<std::pair<MountFile, OpenResult>> r) {
                      ASSERT_TRUE(r.ok());
                      latex_file = r->first;
                      MountRouter::Read(r->first, [&](Result<ReadResult> rr) {
                        ASSERT_TRUE(rr.ok());
                        latex = std::string(rr->data.begin(), rr->data.end());
                      });
                    });
  world.sim.RunFor(Duration::Seconds(1));
  ASSERT_TRUE(notes.has_value());
  EXPECT_EQ(*notes, "my notes");
  ASSERT_TRUE(latex.has_value());
  EXPECT_EQ(*latex, "TeX");

  // Each server granted leases independently.
  EXPECT_GT(world.home.server->stats().leases_granted, 0u);
  EXPECT_GT(world.usr.server->stats().leases_granted, 0u);

  // Writes route to the right primary: update latex via the router.
  bool wrote = false;
  MountRouter::Write(*latex_file, B("TeX2"), [&](Result<WriteResult> r) {
    ASSERT_TRUE(r.ok());
    wrote = true;
  });
  world.sim.RunFor(Duration::Seconds(1));
  ASSERT_TRUE(wrote);
  const FileRecord* rec = world.usr.store.Find(latex_file->file);
  EXPECT_EQ(std::string(rec->data.begin(), rec->data.end()), "TeX2");
  // The home server never saw that write.
  EXPECT_EQ(world.home.server->stats().writes_received, 0u);
  EXPECT_EQ(world.home_oracle.violations(), 0u);
  EXPECT_EQ(world.usr_oracle.violations(), 0u);
}

TEST(MountRouterTest, MountTableEditReroutesAndUnmountFallsThrough) {
  BasicMountRouter<int> router;
  int a = 0, b = 0, c = 0;
  router.Mount("/", &a);
  router.Mount("/usr", &b);
  ASSERT_EQ(router.Route("/usr/bin/cc")->client, &b);

  // Re-mounting a mounted prefix is a mount-table edit, not a new entry:
  // covered paths move to the new endpoint, everything else stays put.
  router.Mount("/usr", &c);
  EXPECT_EQ(router.mount_count(), 2u);
  EXPECT_EQ(router.Route("/usr/bin/cc")->client, &c);
  EXPECT_EQ(router.Route("/home/me")->client, &a);

  // Unmounting falls through to the next-longest cover...
  EXPECT_TRUE(router.Unmount("/usr"));
  EXPECT_EQ(router.Route("/usr/bin/cc")->client, &a);
  EXPECT_FALSE(router.Unmount("/usr"));
  // ...and removing the root leaves the path uncovered.
  EXPECT_TRUE(router.Unmount("/"));
  EXPECT_EQ(router.Route("/usr/bin/cc").code(), ErrorCode::kNotFound);
}

TEST(MountRouterTest, RoutingIsStableAndInsertionOrderIndependent) {
  // A swarm-style shard table: /s0../s7 plus a root catch-all, built in
  // two different insertion orders. Longest-prefix resolution must not
  // depend on mount order, and repeated routes must not drift.
  int shard[8];
  int root = 0;
  BasicMountRouter<int> forward;
  BasicMountRouter<int> reverse;
  forward.Mount("/", &root);
  for (int k = 0; k < 8; ++k) {
    forward.Mount("/s" + std::to_string(k), &shard[k]);
  }
  for (int k = 7; k >= 0; --k) {
    reverse.Mount("/s" + std::to_string(k), &shard[k]);
  }
  reverse.Mount("/", &root);

  for (int k = 0; k < 8; ++k) {
    for (int j = 0; j < 4; ++j) {
      std::string path =
          "/s" + std::to_string(k) + "/swarm/f" + std::to_string(j);
      auto first = forward.Route(path);
      ASSERT_TRUE(first.ok());
      EXPECT_EQ(first->client, &shard[k]) << path;
      auto again = forward.Route(path);
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(again->client, first->client) << path;
      EXPECT_EQ(again->relative_path, first->relative_path) << path;
      auto mirrored = reverse.Route(path);
      ASSERT_TRUE(mirrored.ok());
      EXPECT_EQ(mirrored->client, first->client) << path;
    }
  }
  // "/s12" shares characters with "/s1" but is not under it.
  EXPECT_EQ(forward.Route("/s12/swarm/f0")->client, &root);
}

TEST(MountRouterTest, SwarmNamespaceServesEachFileFromExactlyOneServer) {
  SwarmClusterOptions options;
  options.num_members = 64;
  options.num_servers = 4;
  options.files_per_server = 4;
  SwarmCluster cluster(options);

  // Every home path resolves through the shard router to the one server
  // that actually stores the file, and no (server, file) pair repeats: a
  // datum has exactly one primary site.
  std::set<std::pair<uint32_t, uint64_t>> served_by;
  for (size_t h = 0; h < cluster.homes().size(); ++h) {
    const SwarmHome& home = cluster.homes()[h];
    auto route = cluster.shard_router().Route(cluster.home_path(h));
    ASSERT_TRUE(route.ok()) << cluster.home_path(h);
    EXPECT_EQ(route->client->server, home.server);
    Result<FileId> resolved = route->client->store->Resolve(
        route->relative_path);
    ASSERT_TRUE(resolved.ok()) << cluster.home_path(h);
    EXPECT_EQ(*resolved, home.file);
    EXPECT_TRUE(
        served_by.insert({home.server.value(), home.file.value()}).second)
        << cluster.home_path(h) << " served twice";
  }
  EXPECT_EQ(served_by.size(),
            size_t{options.num_servers} * options.files_per_server);
}

TEST(MountRouterTest, UncachedMountFailsGracefully) {
  TwoServerWorld world;
  bool failed = false;
  world.router.Open("/usr/missing",
                    [&](Result<std::pair<MountFile, OpenResult>> r) {
                      EXPECT_FALSE(r.ok());
                      EXPECT_EQ(r.code(), ErrorCode::kNotFound);
                      failed = true;
                    });
  world.sim.RunFor(Duration::Seconds(1));
  EXPECT_TRUE(failed);
}

}  // namespace
}  // namespace leases
