// Unit tests for the workload generators: Poisson rates, the compile-trace
// synthesizer's calibration, and trace serialization.
#include <gtest/gtest.h>

#include "src/workload/compile_trace.h"
#include "src/workload/poisson_driver.h"
#include "src/workload/v_config.h"

namespace leases {
namespace {

class PoissonRates
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(PoissonRates, AchievedRatesMatchConfiguration) {
  auto [read_rate, write_rate] = GetParam();
  SimCluster cluster(MakeVClusterOptions(Duration::Seconds(10), 10, 5));
  PoissonOptions options;
  options.read_rate = read_rate;
  options.write_rate = write_rate;
  options.measure = Duration::Seconds(2000);
  options.seed = 17;
  PoissonDriver driver(&cluster, options);
  driver.Setup();
  WorkloadReport report = driver.Run();
  double measured_r = static_cast<double>(report.reads) /
                      (10 * report.elapsed.ToSeconds());
  EXPECT_NEAR(measured_r, read_rate, read_rate * 0.1);
  if (write_rate > 0) {
    double measured_w = static_cast<double>(report.writes) /
                        (10 * report.elapsed.ToSeconds());
    EXPECT_NEAR(measured_w, write_rate, write_rate * 0.25 + 0.003);
  }
  EXPECT_EQ(report.oracle_violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Rates, PoissonRates,
    ::testing::Values(std::make_pair(0.864, 0.04), std::make_pair(2.0, 0.2),
                      std::make_pair(0.2, 0.0)));

TEST(PoissonDriverTest, SharingGroupsShareOneFile) {
  SimCluster cluster(MakeVClusterOptions(Duration::Seconds(10), 8, 5));
  PoissonOptions options;
  options.sharing = 4;
  options.measure = Duration::Seconds(100);
  PoissonDriver driver(&cluster, options);
  driver.Setup();
  // Two groups of four -> two shared files created.
  EXPECT_TRUE(cluster.store().Resolve("/shared/group0").ok());
  EXPECT_TRUE(cluster.store().Resolve("/shared/group1").ok());
  EXPECT_FALSE(cluster.store().Resolve("/shared/group2").ok());
}

TEST(CompileTraceTest, CalibrationMatchesTable2) {
  CompileTraceOptions options;
  options.length = Duration::Seconds(2 * 3600);
  CompileTraceGenerator generator(options);
  std::vector<TraceOp> trace = generator.Generate();
  TraceStats stats = generator.Analyze(trace);
  // R within 5% of the paper's 0.864/s; W in the right regime.
  EXPECT_NEAR(stats.ReadRate(), 0.864, 0.05);
  EXPECT_GT(stats.WriteRate(), 0.02);
  EXPECT_LT(stats.WriteRate(), 0.06);
  // Read/write ratio "almost an order of magnitude" above Unix's ~2-3.
  EXPECT_GT(stats.ReadRate() / stats.WriteRate(), 15);
  // Installed files "account for almost half of all reads".
  EXPECT_GT(stats.InstalledShare(), 0.40);
  EXPECT_LT(stats.InstalledShare(), 0.60);
}

TEST(CompileTraceTest, TemporariesAbsorbMostRawWrites) {
  CompileTraceGenerator generator(CompileTraceOptions{});
  std::vector<TraceOp> trace = generator.Generate();
  uint64_t temp_writes = 0;
  uint64_t writes = 0;
  for (const TraceOp& op : trace) {
    if (op.kind == TraceOp::Kind::kWrite) {
      ++writes;
      if (op.path.rfind("/tmp/", 0) == 0) {
        ++temp_writes;
      }
    }
  }
  EXPECT_GT(temp_writes * 2, writes);  // majority
}

TEST(CompileTraceTest, TraceIsTimeOrderedAndDeterministic) {
  CompileTraceGenerator generator(CompileTraceOptions{});
  std::vector<TraceOp> a = generator.Generate();
  std::vector<TraceOp> b = generator.Generate();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_GE(a[i].at, a[i - 1].at);
    EXPECT_EQ(a[i].path, b[i].path);
    EXPECT_EQ(a[i].at, b[i].at);
  }
}

TEST(CompileTraceTest, BurstinessExceedsPoisson) {
  // The coefficient of variation of inter-arrival gaps is well above 1
  // (Poisson would be ~1); this is what sharpens the Figure 1 Trace knee.
  CompileTraceGenerator generator(CompileTraceOptions{});
  std::vector<TraceOp> trace = generator.Generate();
  double sum = 0;
  double sumsq = 0;
  size_t n = 0;
  for (size_t i = 1; i < trace.size(); ++i) {
    double gap = (trace[i].at - trace[i - 1].at).ToSeconds();
    sum += gap;
    sumsq += gap * gap;
    ++n;
  }
  double mean = sum / static_cast<double>(n);
  double var = sumsq / static_cast<double>(n) - mean * mean;
  double cv = std::sqrt(var) / mean;
  EXPECT_GT(cv, 1.5);
}

TEST(CompileTraceTest, SerializeParseRoundTrip) {
  CompileTraceOptions options;
  options.length = Duration::Seconds(300);
  CompileTraceGenerator generator(options);
  std::vector<TraceOp> trace = generator.Generate();
  std::string text = SerializeTrace(trace);
  auto parsed = ParseTrace(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ((*parsed)[i].at, trace[i].at);
    EXPECT_EQ((*parsed)[i].kind, trace[i].kind);
    EXPECT_EQ((*parsed)[i].path, trace[i].path);
    EXPECT_EQ((*parsed)[i].payload, trace[i].payload);
  }
}

TEST(CompileTraceTest, ParseRejectsMalformedLines) {
  EXPECT_FALSE(ParseTrace("not a trace").has_value());
  EXPECT_FALSE(ParseTrace("123 X /path").has_value());
  EXPECT_FALSE(ParseTrace("123 R relative").has_value());
  auto empty = ParseTrace("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

TEST(TraceRunnerTest, ReplayTouchesServerAndStaysConsistent) {
  CompileTraceOptions options;
  options.length = Duration::Seconds(600);
  CompileTraceGenerator generator(options);
  std::vector<TraceOp> trace = generator.Generate();

  SimCluster cluster(MakeVClusterOptions(Duration::Seconds(10), 1));
  generator.PopulateStore(cluster.store());
  TraceRunner runner(&cluster, 0);
  TraceRunReport report = runner.Run(trace);
  EXPECT_EQ(report.ops_issued, trace.size());
  EXPECT_EQ(report.failures, 0u);
  EXPECT_GT(report.server_total_msgs, 0u);
  EXPECT_EQ(report.oracle_violations, 0u);
}

}  // namespace
}  // namespace leases
