// Unit tests for the common substrate: time types, strong ids, Result,
// binary codec and path splitting.
#include <gtest/gtest.h>

#include "src/common/codec.h"
#include "src/common/ids.h"
#include "src/common/path.h"
#include "src/common/result.h"
#include "src/common/time.h"

namespace leases {
namespace {

TEST(DurationTest, ConstructionAndConversion) {
  EXPECT_EQ(Duration::Seconds(1.5).ToMicros(), 1500000);
  EXPECT_EQ(Duration::Millis(3).ToMicros(), 3000);
  EXPECT_EQ(Duration::Micros(7).ToMicros(), 7);
  EXPECT_DOUBLE_EQ(Duration::Seconds(2).ToSeconds(), 2.0);
  EXPECT_DOUBLE_EQ(Duration::Millis(250).ToMillis(), 250.0);
}

TEST(DurationTest, Arithmetic) {
  Duration a = Duration::Seconds(2);
  Duration b = Duration::Millis(500);
  EXPECT_EQ((a + b).ToMicros(), 2500000);
  EXPECT_EQ((a - b).ToMicros(), 1500000);
  EXPECT_EQ((a * 3).ToMicros(), 6000000);
  EXPECT_EQ((a * 0.25).ToMicros(), 500000);
  EXPECT_EQ((a / 4).ToMicros(), 500000);
  EXPECT_EQ((-b).ToMicros(), -500000);
}

TEST(DurationTest, Comparison) {
  EXPECT_LT(Duration::Millis(1), Duration::Millis(2));
  EXPECT_EQ(Duration::Seconds(1), Duration::Millis(1000));
  EXPECT_GT(Duration::Infinite(), Duration::Seconds(1e9));
}

TEST(DurationTest, InfiniteIsSticky) {
  EXPECT_TRUE(Duration::Infinite().IsInfinite());
  EXPECT_FALSE(Duration::Seconds(1e6).IsInfinite());
  // Adding to infinite stays effectively infinite (no overflow wrap).
  Duration d = Duration::Infinite() + Duration::Seconds(100);
  EXPECT_GT(d, Duration::Seconds(1e9));
}

TEST(DurationTest, Formatting) {
  EXPECT_EQ(Duration::Seconds(10).ToString(), "10s");
  EXPECT_EQ(Duration::Millis(250).ToString(), "250ms");
  EXPECT_EQ(Duration::Micros(42).ToString(), "42us");
  EXPECT_EQ(Duration::Infinite().ToString(), "inf");
}

TEST(TimePointTest, Arithmetic) {
  TimePoint t = TimePoint::FromMicros(1000);
  EXPECT_EQ((t + Duration::Micros(500)).ToMicros(), 1500);
  EXPECT_EQ((t - Duration::Micros(500)).ToMicros(), 500);
  EXPECT_EQ((t - TimePoint::FromMicros(400)).ToMicros(), 600);
  EXPECT_LT(TimePoint::Epoch(), t);
  EXPECT_LT(t, TimePoint::Max());
}

TEST(StrongIdTest, DistinctTypesAndValidity) {
  NodeId node(3);
  FileId file(3);
  EXPECT_EQ(node.value(), 3u);
  EXPECT_EQ(file.value(), 3u);
  EXPECT_TRUE(node.valid());
  EXPECT_FALSE(NodeId().valid());
  // Different tag types do not compare or convert (compile-time property);
  // here we just check hashing and ordering work.
  std::unordered_map<FileId, int> map;
  map[FileId(1)] = 10;
  map[FileId(2)] = 20;
  EXPECT_EQ(map[FileId(1)], 10);
  EXPECT_LT(FileId(1), FileId(2));
}

TEST(StrongIdTest, GeneratorSequence) {
  IdGenerator<RequestId> gen;
  EXPECT_EQ(gen.Next().value(), 1u);
  EXPECT_EQ(gen.Next().value(), 2u);
  IdGenerator<RequestId> salted(1000);
  EXPECT_EQ(salted.Next().value(), 1001u);
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.value_or(-1), 42);

  Result<int> err = Error{ErrorCode::kNotFound, "gone"};
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), ErrorCode::kNotFound);
  EXPECT_EQ(err.error().ToString(), "NOT_FOUND: gone");
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(ResultTest, StatusBasics) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  Status bad(ErrorCode::kTimeout, "slow");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), ErrorCode::kTimeout);
}

TEST(ResultTest, ErrorCodeNamesAreDistinct) {
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kOk), "OK");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kConflict), "CONFLICT");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kUnavailable), "UNAVAILABLE");
  EXPECT_STRNE(ErrorCodeName(ErrorCode::kTimeout),
               ErrorCodeName(ErrorCode::kAborted));
}

TEST(CodecTest, ScalarRoundTrip) {
  Writer w;
  w.WriteU8(0xAB);
  w.WriteU16(0x1234);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0123456789ABCDEFull);
  w.WriteI64(-42);
  w.WriteDouble(3.25);
  w.WriteBool(true);
  w.WriteDuration(Duration::Millis(7));
  w.WriteId(FileId(99));

  Reader r(w.buffer());
  EXPECT_EQ(r.ReadU8(), 0xAB);
  EXPECT_EQ(r.ReadU16(), 0x1234);
  EXPECT_EQ(r.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.ReadI64(), -42);
  EXPECT_DOUBLE_EQ(r.ReadDouble(), 3.25);
  EXPECT_TRUE(r.ReadBool());
  EXPECT_EQ(r.ReadDuration(), Duration::Millis(7));
  EXPECT_EQ(r.ReadId<FileId>(), FileId(99));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(r.ok());
}

TEST(CodecTest, BytesAndStrings) {
  Writer w;
  w.WriteBytes(std::vector<uint8_t>{1, 2, 3});
  w.WriteString("hello");
  w.WriteString("");
  Reader r(w.buffer());
  EXPECT_EQ(r.ReadBytes(), (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_TRUE(r.ok());
}

TEST(CodecTest, TruncationLatchesError) {
  Writer w;
  w.WriteU64(7);
  std::vector<uint8_t> bytes = w.buffer();
  bytes.resize(5);
  Reader r(bytes);
  EXPECT_EQ(r.ReadU64(), 0u);  // safe default
  EXPECT_FALSE(r.ok());
}

TEST(CodecTest, OversizedLengthPrefixIsRejected) {
  Writer w;
  w.WriteU32(0xFFFFFFFF);  // claims 4 GiB of payload
  Reader r(w.buffer());
  EXPECT_TRUE(r.ReadBytes().empty());
  EXPECT_FALSE(r.ok());
}

class CodecFuzz : public ::testing::TestWithParam<size_t> {};

TEST_P(CodecFuzz, ReaderNeverReadsPastEnd) {
  // Any prefix of a valid buffer must decode without touching memory past
  // the end; ok() reports the truncation.
  Writer w;
  for (int i = 0; i < 8; ++i) {
    w.WriteU64(static_cast<uint64_t>(i) * 0x0101010101010101ull);
    w.WriteString("payload-" + std::to_string(i));
  }
  std::vector<uint8_t> bytes = w.buffer();
  size_t keep = GetParam() % (bytes.size() + 1);
  bytes.resize(keep);
  Reader r(bytes);
  for (int i = 0; i < 8; ++i) {
    (void)r.ReadU64();
    (void)r.ReadString();
  }
  // Either everything decoded (full buffer) or the error latched.
  EXPECT_TRUE(r.ok() == (keep == w.buffer().size()));
}

INSTANTIATE_TEST_SUITE_P(Prefixes, CodecFuzz,
                         ::testing::Values(0, 1, 7, 8, 9, 15, 33, 64, 100,
                                           1000, 100000));

TEST(PathTest, SplitAbsPath) {
  auto parts = SplitAbsPath("/a/b/c");
  ASSERT_TRUE(parts.has_value());
  EXPECT_EQ(*parts, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitAbsPath("/")->empty());
  EXPECT_FALSE(SplitAbsPath("").has_value());
  EXPECT_FALSE(SplitAbsPath("relative/path").has_value());
  EXPECT_FALSE(SplitAbsPath("/a//b").has_value());
  auto trailing = SplitAbsPath("/a/b/");
  ASSERT_TRUE(trailing.has_value());
  EXPECT_EQ(*trailing, (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace leases
