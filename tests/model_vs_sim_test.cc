// Validation of the analytic model against the discrete-event simulation --
// the paper's own check ("the proximity of this curve to the no-sharing
// curve ... validates the model", Section 3.2), run in both directions:
// extension load and write-approval load.
#include <gtest/gtest.h>

#include "src/analytic/model.h"
#include "src/workload/poisson_driver.h"
#include "src/workload/v_config.h"

namespace leases {
namespace {

WorkloadReport RunPoisson(Duration term, size_t sharing, uint64_t seed,
                          Duration measure = Duration::Seconds(2000)) {
  SimCluster cluster(MakeVClusterOptions(term, /*num_clients=*/20, seed));
  PoissonOptions options;
  options.sharing = sharing;
  options.measure = measure;
  options.seed = seed;
  PoissonDriver driver(&cluster, options);
  driver.Setup();
  return driver.Run();
}

TEST(ModelVsSim, ZeroTermLoadIsTwoNR) {
  WorkloadReport report = RunPoisson(Duration::Zero(), 1, 11);
  LeaseModel model(SystemParams::VSystem(1));
  double expected = model.ConsistencyLoad(Duration::Zero());  // 2NR
  EXPECT_NEAR(report.ConsistencyMsgsPerSec(), expected, expected * 0.06);
  EXPECT_EQ(report.oracle_violations, 0u);
}

TEST(ModelVsSim, TenSecondTermMatchesModelAtS1) {
  WorkloadReport report = RunPoisson(Duration::Seconds(10), 1, 12);
  LeaseModel model(SystemParams::VSystem(1));
  double expected = model.ConsistencyLoad(Duration::Seconds(10));
  EXPECT_NEAR(report.ConsistencyMsgsPerSec(), expected, expected * 0.12);
}

TEST(ModelVsSim, ThirtySecondTermMatchesModelAtS1) {
  WorkloadReport report = RunPoisson(Duration::Seconds(30), 1, 13);
  LeaseModel model(SystemParams::VSystem(1));
  double expected = model.ConsistencyLoad(Duration::Seconds(30));
  EXPECT_NEAR(report.ConsistencyMsgsPerSec(), expected, expected * 0.15);
}

TEST(ModelVsSim, SharedWritesAddApprovalTraffic) {
  // S = 10: formula (1) adds N*S*W approval messages per second.
  WorkloadReport report = RunPoisson(Duration::Seconds(10), 10, 14);
  LeaseModel model(SystemParams::VSystem(10));
  double expected = model.ConsistencyLoad(Duration::Seconds(10));
  // The simulation's effective S is slightly below 10 (leases lapse between
  // reads), so allow a wider band but require the approval term's presence:
  double extension_only =
      LeaseModel(SystemParams::VSystem(1)).ConsistencyLoad(
          Duration::Seconds(10));
  EXPECT_GT(report.ConsistencyMsgsPerSec(), extension_only * 1.5);
  EXPECT_LT(report.ConsistencyMsgsPerSec(), expected * 1.15);
  EXPECT_EQ(report.oracle_violations, 0u);
}

TEST(ModelVsSim, ReadDelayMatchesFormulaTwo) {
  // At t_s = 10 s, mean added read delay = (2m_prop+4m_proc)/(1+R t_c).
  WorkloadReport report = RunPoisson(Duration::Seconds(10), 1, 15);
  LeaseModel model(SystemParams::VSystem(1));
  double tc = model.EffectiveTerm(Duration::Seconds(10)).ToSeconds();
  double expected =
      model.ExtensionDelay().ToSeconds() / (1.0 + 0.864 * tc);
  EXPECT_NEAR(report.read_delay.Mean(), expected, expected * 0.15);
}

TEST(ModelVsSim, LongerTermsReduceLoadMonotonically) {
  double prev = 1e18;
  for (int term_s : {0, 2, 5, 10, 30}) {
    WorkloadReport report =
        RunPoisson(Duration::Seconds(term_s), 1, 16,
                   Duration::Seconds(1000));
    double load = report.ConsistencyMsgsPerSec();
    EXPECT_LT(load, prev) << "term " << term_s;
    prev = load;
  }
}

}  // namespace
}  // namespace leases
