// Determinism: identical seeds must reproduce entire simulations
// bit-for-bit -- the property the benches, the property tests and the
// EXPERIMENTS.md numbers all rely on.
#include <gtest/gtest.h>

#include "src/workload/compile_trace.h"
#include "src/workload/poisson_driver.h"
#include "src/workload/v_config.h"

namespace leases {
namespace {

struct RunSignature {
  uint64_t reads;
  uint64_t writes;
  uint64_t server_consistency;
  uint64_t server_total;
  uint64_t executed_events;
  double read_delay_sum;

  bool operator==(const RunSignature&) const = default;
};

enum class MessagePath { kTyped, kForceWire, kConformance };

RunSignature RunOnce(uint64_t seed, double loss,
                     MessagePath path = MessagePath::kTyped) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 10,
                                               seed);
  options.net.loss_prob = loss;
  SimCluster cluster(options);
  cluster.network().set_force_wire(path == MessagePath::kForceWire);
  cluster.network().set_codec_conformance(path == MessagePath::kConformance);
  PoissonOptions poisson;
  poisson.sharing = 5;
  poisson.seed = seed;
  poisson.measure = Duration::Seconds(500);
  PoissonDriver driver(&cluster, poisson);
  driver.Setup();
  WorkloadReport report = driver.Run();
  return RunSignature{report.reads,
                      report.writes,
                      report.server_consistency_msgs,
                      report.server_total_msgs,
                      cluster.sim().executed_events(),
                      report.read_delay.sum()};
}

TEST(DeterminismTest, SameSeedSameWorldExactly) {
  RunSignature a = RunOnce(42, 0.1);
  RunSignature b = RunOnce(42, 0.1);
  EXPECT_EQ(a, b);
}

TEST(DeterminismTest, TypedFastPathMatchesWirePathExactly) {
  // The zero-serialization fast path must be observationally identical to
  // routing every message through Encode/Decode: same timings, same event
  // count, same protocol outcomes -- including under loss, where both
  // paths must consume the loss RNG identically.
  RunSignature typed = RunOnce(42, 0.1, MessagePath::kTyped);
  RunSignature wire = RunOnce(42, 0.1, MessagePath::kForceWire);
  EXPECT_EQ(typed, wire);
}

TEST(DeterminismTest, ConformanceModeDoesNotPerturbTheRun) {
  // Conformance mode round-trips every packet through the codec but
  // delivers the decoded packet on the fast path; nothing observable may
  // change.
  RunSignature typed = RunOnce(42, 0.0, MessagePath::kTyped);
  RunSignature conf = RunOnce(42, 0.0, MessagePath::kConformance);
  EXPECT_EQ(typed, conf);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  RunSignature a = RunOnce(42, 0.1);
  RunSignature b = RunOnce(43, 0.1);
  EXPECT_NE(a, b);
}

TEST(DeterminismTest, TraceGenerationIsPure) {
  CompileTraceOptions options;
  options.length = Duration::Seconds(900);
  std::string a = SerializeTrace(CompileTraceGenerator(options).Generate());
  std::string b = SerializeTrace(CompileTraceGenerator(options).Generate());
  EXPECT_EQ(a, b);
  options.seed += 1;
  std::string c = SerializeTrace(CompileTraceGenerator(options).Generate());
  EXPECT_NE(a, c);
}

TEST(DeterminismTest, FaultInjectionRepeatsExactly) {
  auto run = []() {
    ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 3, 7);
    SimCluster cluster(options);
    FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                              Bytes("v"));
    (void)cluster.SyncRead(0, file);
    (void)cluster.SyncRead(1, file);
    cluster.CrashServer();
    cluster.RunFor(Duration::Seconds(1));
    cluster.RestartServer();
    (void)cluster.SyncWrite(2, file, Bytes("w"), Duration::Seconds(30));
    (void)cluster.SyncRead(1, file);
    return cluster.sim().executed_events();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace leases
