// Protocol conformance: the exact wire-message sequences for the canonical
// flows of Section 2, captured with the network tap and decoded. These
// tests pin the protocol itself, not just its outcomes — a refactor that
// changes what goes on the wire fails here even if behaviour survives.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/sim_cluster.h"
#include "src/workload/v_config.h"

namespace leases {
namespace {

struct WireEvent {
  NodeId src;
  NodeId dst;
  MessageClass cls;
  std::string name;
};

class Tap {
 public:
  explicit Tap(SimCluster& cluster) {
    cluster.network().set_tracer(
        [this](NodeId src, NodeId dst, MessageClass cls,
               std::span<const uint8_t> bytes) {
          std::optional<Packet> packet = DecodePacket(bytes);
          events.push_back(WireEvent{
              src, dst, cls,
              packet.has_value() ? PacketName(*packet) : "<garbage>"});
        });
  }

  std::vector<std::string> Names() const {
    std::vector<std::string> out;
    for (const WireEvent& e : events) {
      out.push_back(e.name);
    }
    return out;
  }

  void Clear() { events.clear(); }

  std::vector<WireEvent> events;
};

TEST(ConformanceTest, ColdReadIsOneRequestResponse) {
  SimCluster cluster(MakeVClusterOptions(Duration::Seconds(10), 1));
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("x"));
  Tap tap(cluster);
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  EXPECT_EQ(tap.Names(),
            (std::vector<std::string>{"ReadRequest", "ReadReply"}));
  EXPECT_EQ(tap.events[0].cls, MessageClass::kData);
  EXPECT_EQ(tap.events[0].src, cluster.client_id(0));
  EXPECT_EQ(tap.events[1].src, cluster.server_id());
}

TEST(ConformanceTest, CachedReadIsSilent) {
  SimCluster cluster(MakeVClusterOptions(Duration::Seconds(10), 1));
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("x"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  Tap tap(cluster);
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  EXPECT_TRUE(tap.events.empty());
}

TEST(ConformanceTest, ExpiredReadIsOneExtensionPair) {
  SimCluster cluster(MakeVClusterOptions(Duration::Seconds(10), 1));
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("x"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  cluster.RunFor(Duration::Seconds(11));
  Tap tap(cluster);
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  EXPECT_EQ(tap.Names(),
            (std::vector<std::string>{"ExtendRequest", "ExtendReply"}));
  EXPECT_EQ(tap.events[0].cls, MessageClass::kConsistency);
  EXPECT_EQ(tap.events[1].cls, MessageClass::kConsistency);
}

TEST(ConformanceTest, UnsharedWriteIsOneRequestResponse) {
  // Footnote 5: "the common case of an unshared file to be handled with a
  // single unicast request-response from the client to the server".
  SimCluster cluster(MakeVClusterOptions(Duration::Seconds(10), 1));
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("x"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());  // writer holds the lease
  Tap tap(cluster);
  ASSERT_TRUE(cluster.SyncWrite(0, file, Bytes("y")).ok());
  EXPECT_EQ(tap.Names(),
            (std::vector<std::string>{"WriteRequest", "WriteReply"}));
}

TEST(ConformanceTest, SharedWriteIsSMessagesAtTheServer) {
  // "one multicast request message plus S-1 approvals, for a total of S
  // messages" — S = 3 here (writer + 2 other holders).
  SimCluster cluster(MakeVClusterOptions(Duration::Seconds(10), 3));
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("x"));
  for (size_t c = 0; c < 3; ++c) {
    ASSERT_TRUE(cluster.SyncRead(c, file).ok());
  }
  Tap tap(cluster);
  ASSERT_TRUE(cluster.SyncWrite(0, file, Bytes("y")).ok());

  // Full wire order: the write, one ApproveRequest per non-writer holder
  // (one multicast = one logical send, two tap events since the tap fires
  // per destination), the two approvals, then the ack.
  std::vector<std::string> names = tap.Names();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names[0], "WriteRequest");
  EXPECT_EQ(names[1], "ApproveRequest");
  EXPECT_EQ(names[2], "ApproveRequest");
  EXPECT_EQ(names[3], "ApproveReply");
  EXPECT_EQ(names[4], "ApproveReply");
  EXPECT_EQ(names[5], "WriteReply");
  // The paper's S-message count at the server: 1 multicast sent +
  // (S-1) approvals received.
  const NodeMessageStats& server =
      cluster.network().stats(cluster.server_id());
  EXPECT_EQ(server.HandledByClass(MessageClass::kConsistency), 3u);
}

TEST(ConformanceTest, BatchedExtensionIsOnePairForManyFiles) {
  SimCluster cluster(MakeVClusterOptions(Duration::Seconds(10), 1));
  std::vector<FileId> files;
  for (int i = 0; i < 6; ++i) {
    files.push_back(*cluster.store().CreatePath(
        "/f" + std::to_string(i), FileClass::kNormal, Bytes("x")));
    ASSERT_TRUE(cluster.SyncRead(0, files.back()).ok());
  }
  cluster.RunFor(Duration::Seconds(11));
  Tap tap(cluster);
  ASSERT_TRUE(cluster.SyncRead(0, files[2]).ok());
  EXPECT_EQ(tap.Names(),
            (std::vector<std::string>{"ExtendRequest", "ExtendReply"}));
}

TEST(ConformanceTest, InstalledRenewalIsServerPushOnly) {
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 2);
  options.server.installed_optimization = true;
  options.server.installed_multicast_period = Duration::Seconds(2);
  SimCluster cluster(options);
  ASSERT_TRUE(cluster.store()
                  .CreatePath("/usr/bin/cc", FileClass::kInstalled,
                              Bytes("cc"))
                  .ok());
  FileId dir = *cluster.store().Resolve("/usr/bin");
  ASSERT_TRUE(cluster.server().InstallDirectory(dir).ok());
  FileId cc = *cluster.store().Resolve("/usr/bin/cc");
  ASSERT_TRUE(cluster.SyncRead(0, cc).ok());

  Tap tap(cluster);
  cluster.RunFor(Duration::Seconds(10));
  // All traffic in the window is server->clients InstalledExtend pushes;
  // the client never initiates anything.
  ASSERT_FALSE(tap.events.empty());
  for (const WireEvent& e : tap.events) {
    EXPECT_EQ(e.name, "InstalledExtend");
    EXPECT_EQ(e.src, cluster.server_id());
    EXPECT_EQ(e.cls, MessageClass::kConsistency);
  }
}

TEST(ConformanceTest, NotModifiedExtensionCarriesNoPayload) {
  SimCluster cluster(MakeVClusterOptions(Duration::Seconds(10), 1));
  FileId file = *cluster.store().CreatePath(
      "/big", FileClass::kNormal, std::vector<uint8_t>(8192, 0x5A));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  cluster.RunFor(Duration::Seconds(11));
  size_t reply_size = 0;
  cluster.network().set_tracer([&](NodeId src, NodeId, MessageClass,
                                   std::span<const uint8_t> bytes) {
    if (src == cluster.server_id()) {
      reply_size = bytes.size();
    }
  });
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  EXPECT_GT(reply_size, 0u);
  EXPECT_LT(reply_size, 128u);  // no 8 KiB payload on the wire
}

}  // namespace
}  // namespace leases
