// Unit tests for the file-store substrate: namespace operations,
// versioning, permissions, directory data, cover keys and durable metadata.
#include <gtest/gtest.h>

#include "src/fs/file_store.h"

namespace leases {
namespace {

std::vector<uint8_t> B(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(FileStoreTest, RootExistsAndIsEmptyDirectory) {
  FileStore store;
  const FileRecord* root = store.Find(store.root());
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->file_class, FileClass::kDirectory);
  auto entries = DecodeDirectory(root->data);
  ASSERT_TRUE(entries.has_value());
  EXPECT_TRUE(entries->empty());
}

TEST(FileStoreTest, CreateAndLookup) {
  FileStore store;
  Result<FileId> file = store.Create(store.root(), "hello",
                                     FileClass::kNormal, B("hi"),
                                     kModeRead | kModeWrite, NodeId());
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(*store.Lookup(store.root(), "hello"), *file);
  EXPECT_EQ(store.Find(*file)->version, 1u);
  EXPECT_EQ(store.Find(*file)->name, "hello");
  // Duplicate names are rejected.
  EXPECT_EQ(store.Create(store.root(), "hello", FileClass::kNormal, {},
                         kModeRead, NodeId())
                .code(),
            ErrorCode::kConflict);
}

TEST(FileStoreTest, CreateBumpsDirectoryVersion) {
  FileStore store;
  uint64_t v0 = store.Find(store.root())->version;
  ASSERT_TRUE(store.Create(store.root(), "a", FileClass::kNormal, {},
                           kModeRead, NodeId())
                  .ok());
  EXPECT_EQ(store.Find(store.root())->version, v0 + 1);
}

TEST(FileStoreTest, CreatePathMakesIntermediateDirectories) {
  FileStore store;
  Result<FileId> file = store.CreatePath("/a/b/c/file", FileClass::kNormal,
                                         B("x"));
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(*store.Resolve("/a/b/c/file"), *file);
  EXPECT_EQ(store.Find(*store.Resolve("/a/b"))->file_class,
            FileClass::kDirectory);
  EXPECT_FALSE(store.Resolve("/a/b/missing").ok());
  EXPECT_FALSE(store.CreatePath("bad", FileClass::kNormal, {}).ok());
}

TEST(FileStoreTest, ApplyIncrementsVersionAndReplacesData) {
  FileStore store;
  FileId file = *store.CreatePath("/f", FileClass::kNormal, B("v1"));
  Result<uint64_t> v2 = store.Apply(file, B("v2"), NodeId());
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, 2u);
  EXPECT_EQ(store.Find(file)->data, B("v2"));
  EXPECT_FALSE(store.Apply(FileId(999), B("x"), NodeId()).ok());
}

TEST(FileStoreTest, PermissionsEnforcedWithOwnerOverride) {
  FileStore store;
  NodeId owner(7);
  NodeId other(8);
  FileId file = *store.CreatePath("/private", FileClass::kNormal, B("x"),
                                  /*mode=*/0, owner);
  EXPECT_EQ(store.Read(file, other).code(), ErrorCode::kPermissionDenied);
  EXPECT_TRUE(store.Read(file, owner).ok());
  EXPECT_EQ(store.Apply(file, B("y"), other).code(),
            ErrorCode::kPermissionDenied);
  EXPECT_TRUE(store.Apply(file, B("y"), owner).ok());
  EXPECT_EQ(store.CheckWrite(file, other).code(),
            ErrorCode::kPermissionDenied);
  EXPECT_TRUE(store.CheckWrite(file, owner).ok());
}

TEST(FileStoreTest, ChmodUpdatesFileAndParentBinding) {
  FileStore store;
  NodeId owner(7);
  FileId file = *store.CreatePath("/doc", FileClass::kNormal, B("x"),
                                  kModeRead | kModeWrite, owner);
  EXPECT_EQ(store.Chmod(file, kModeRead, NodeId(9)).code(),
            ErrorCode::kPermissionDenied);
  ASSERT_TRUE(store.Chmod(file, kModeRead, owner).ok());
  EXPECT_EQ(store.Find(file)->mode, kModeRead);
  // The permission record in the directory datum changed too (it is cached
  // by clients under a lease).
  auto entries = DecodeDirectory(store.Find(store.root())->data);
  ASSERT_TRUE(entries.has_value());
  EXPECT_EQ(FindEntry(*entries, "doc")->mode, kModeRead);
  // Writes now rejected for non-owners.
  EXPECT_EQ(store.Apply(file, B("y"), NodeId(9)).code(),
            ErrorCode::kPermissionDenied);
}

TEST(FileStoreTest, RenameKeepsIdAndBumpsDirVersion) {
  FileStore store;
  FileId file = *store.CreatePath("/old", FileClass::kNormal, B("x"));
  uint64_t dir_version = store.Find(store.root())->version;
  ASSERT_TRUE(store.Rename(store.root(), "old", "new", NodeId()).ok());
  EXPECT_EQ(*store.Resolve("/new"), file);
  EXPECT_FALSE(store.Resolve("/old").ok());
  EXPECT_EQ(store.Find(store.root())->version, dir_version + 1);
  EXPECT_EQ(store.Find(file)->name, "new");
  // Rename onto an existing name fails.
  ASSERT_TRUE(store.CreatePath("/other", FileClass::kNormal, B("y")).ok());
  EXPECT_EQ(store.Rename(store.root(), "new", "other", NodeId()).code(),
            ErrorCode::kConflict);
}

TEST(FileStoreTest, RemoveSemantics) {
  FileStore store;
  ASSERT_TRUE(store.CreatePath("/dir/inner", FileClass::kNormal, B("x")).ok());
  FileId dir = *store.Resolve("/dir");
  // Non-empty directories cannot be removed.
  EXPECT_EQ(store.Remove(store.root(), "dir", NodeId()).code(),
            ErrorCode::kConflict);
  ASSERT_TRUE(store.Remove(dir, "inner", NodeId()).ok());
  ASSERT_TRUE(store.Remove(store.root(), "dir", NodeId()).ok());
  EXPECT_FALSE(store.Resolve("/dir").ok());
  EXPECT_EQ(store.Remove(store.root(), "dir", NodeId()).code(),
            ErrorCode::kNotFound);
}

TEST(FileStoreTest, DirectoryDatumWritesAreValidated) {
  FileStore store;
  FileId dir = *store.Mkdir(store.root(), "d", NodeId());
  // Garbage bytes must not be committable as a directory datum.
  EXPECT_EQ(store.Apply(dir, B("not a directory"), NodeId()).code(),
            ErrorCode::kInvalidArgument);
  // A well-formed table is accepted.
  std::vector<DirEntry> entries = {{"x", FileId(42), kModeRead,
                                    FileClass::kNormal}};
  EXPECT_TRUE(store.Apply(dir, EncodeDirectory(entries), NodeId()).ok());
}

TEST(FileStoreTest, CoverKeysDefaultPrivateThenDirectoryGrouped) {
  FileStore store;
  FileId a = *store.CreatePath("/bin/a", FileClass::kInstalled, B("a"));
  FileId b = *store.CreatePath("/bin/b", FileClass::kInstalled, B("b"));
  FileId c = *store.CreatePath("/bin/c", FileClass::kNormal, B("c"));
  EXPECT_NE(store.CoverOf(a), store.CoverOf(b));

  FileId bin = *store.Resolve("/bin");
  ASSERT_TRUE(store.CoverDirectory(bin).ok());
  // Installed files share the directory's key; the normal file keeps its
  // own.
  EXPECT_EQ(store.CoverOf(a), store.CoverOf(bin));
  EXPECT_EQ(store.CoverOf(b), store.CoverOf(bin));
  EXPECT_NE(store.CoverOf(c), store.CoverOf(bin));
  std::vector<FileId> covered = store.FilesCovered(store.CoverOf(bin));
  EXPECT_EQ(covered.size(), 3u);  // dir datum + 2 installed files
  // Idempotent.
  ASSERT_TRUE(store.CoverDirectory(bin).ok());
  EXPECT_EQ(store.FilesCovered(store.CoverOf(bin)).size(), 3u);
}

TEST(FileStoreTest, DirCodecRoundTripAndMalformed) {
  std::vector<DirEntry> entries = {
      {"alpha", FileId(1), kModeRead | kModeWrite, FileClass::kNormal},
      {"beta", FileId(2), kModeRead, FileClass::kInstalled},
      {"gamma", FileId(3), 0, FileClass::kDirectory},
  };
  std::vector<uint8_t> bytes = EncodeDirectory(entries);
  auto decoded = DecodeDirectory(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, entries);
  EXPECT_EQ(FindEntry(*decoded, "beta")->file, FileId(2));
  EXPECT_EQ(FindEntry(*decoded, "missing"), nullptr);

  bytes.resize(bytes.size() - 3);
  EXPECT_FALSE(DecodeDirectory(bytes).has_value());
}

TEST(FileStoreTest, AllFilesAndApproxBytes) {
  FileStore store;
  ASSERT_TRUE(store.CreatePath("/a", FileClass::kNormal,
                               std::vector<uint8_t>(1000, 1))
                  .ok());
  EXPECT_EQ(store.file_count(), 2u);  // root + /a
  EXPECT_EQ(store.AllFiles().size(), 2u);
  EXPECT_GT(store.ApproxBytes(), 1000u);
}

TEST(DurableMetaTest, SaveLoadAndWriteAccounting) {
  DurableMeta meta;
  EXPECT_FALSE(meta.Load("max_term_us").has_value());
  meta.Save("max_term_us", 10000000);
  meta.CountWrite();
  EXPECT_EQ(*meta.Load("max_term_us"), 10000000);
  EXPECT_EQ(meta.write_count(), 1u);
  meta.Save("max_term_us", 30000000);
  meta.CountWrite();
  EXPECT_EQ(*meta.Load("max_term_us"), 30000000);
}

}  // namespace
}  // namespace leases
