// Unit tests for the Section 6 baseline protocols and their failure modes:
// Andrew-style callbacks serve stale data exactly during partitions (bounded
// by the poll period); TTL hints serve stale data within the TTL; neither
// happens with leases.
#include <gtest/gtest.h>

#include "src/baseline/baseline_cluster.h"

namespace leases {
namespace {

std::vector<uint8_t> B(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}
std::string T(const std::vector<uint8_t>& b) {
  return std::string(b.begin(), b.end());
}

BaselineOptions CallbackOptions(Duration poll = Duration::Seconds(60)) {
  BaselineOptions options;
  options.mode = BaselineMode::kCallbacks;
  options.poll_period = poll;
  options.num_clients = 2;
  return options;
}

TEST(CallbackBaselineTest, CachedReadsAreFreeAndConsistentWhenHealthy) {
  BaselineCluster cluster(CallbackOptions());
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            B("v1"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  Result<ReadResult> again = cluster.SyncRead(0, file);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->from_cache);
  EXPECT_EQ(cluster.server().stats().reads_served, 1u);

  // A write breaks the other client's callback before... no: concurrently;
  // but with a healthy network the break lands promptly.
  ASSERT_TRUE(cluster.SyncWrite(1, file, B("v2")).ok());
  cluster.RunFor(Duration::Millis(50));
  Result<ReadResult> fresh = cluster.SyncRead(0, file);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(T(fresh->data), "v2");
  EXPECT_EQ(cluster.client(0).stats().breaks_received, 1u);
}

TEST(CallbackBaselineTest, PartitionedClientServesStaleData) {
  // The paper's critique: "the server allows updates to proceed, possibly
  // leaving the client operating on stale data."
  BaselineCluster cluster(CallbackOptions());
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            B("v1"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  cluster.PartitionClient(0, true);

  // The write succeeds IMMEDIATELY despite the unreachable holder...
  TimePoint start = cluster.sim().Now();
  ASSERT_TRUE(cluster.SyncWrite(1, file, B("v2")).ok());
  EXPECT_LT(cluster.sim().Now() - start, Duration::Millis(100));

  // ...and the partitioned client happily serves v1.
  Result<ReadResult> stale = cluster.SyncRead(0, file);
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(T(stale->data), "v1");
  EXPECT_GT(cluster.oracle().stale_reads(), 0u);
}

TEST(CallbackBaselineTest, PollBoundsTheStaleWindow) {
  BaselineCluster cluster(CallbackOptions(Duration::Seconds(30)));
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            B("v1"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  cluster.PartitionClient(0, true);
  ASSERT_TRUE(cluster.SyncWrite(1, file, B("v2")).ok());
  cluster.PartitionClient(0, false);  // heal; the break was already lost

  // Until the poll, client 0 is stale...
  Result<ReadResult> stale = cluster.SyncRead(0, file);
  EXPECT_EQ(T(stale->data), "v1");
  // ...after the poll period it has refreshed.
  cluster.RunFor(Duration::Seconds(35));
  Result<ReadResult> fresh = cluster.SyncRead(0, file);
  EXPECT_EQ(T(fresh->data), "v2");
  EXPECT_GT(cluster.client(0).stats().refreshed, 0u);
}

TEST(CallbackBaselineTest, ValidationReestablishesCallback) {
  BaselineCluster cluster(CallbackOptions(Duration::Seconds(5)));
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            B("v1"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  // Lose the callback via a partitioned write, heal, poll re-registers.
  cluster.PartitionClient(0, true);
  ASSERT_TRUE(cluster.SyncWrite(1, file, B("v2")).ok());
  cluster.PartitionClient(0, false);
  cluster.RunFor(Duration::Seconds(6));  // poll fires, re-registers
  // The next write breaks client 0 again.
  ASSERT_TRUE(cluster.SyncWrite(1, file, B("v3")).ok());
  cluster.RunFor(Duration::Millis(50));
  EXPECT_FALSE(cluster.client(0).HasCached(file));
}

TEST(TtlBaselineTest, StaleWithinTtlFreshAfter) {
  BaselineOptions options;
  options.mode = BaselineMode::kStateless;
  options.ttl = Duration::Seconds(10);
  options.num_clients = 2;
  BaselineCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            B("v1"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  ASSERT_TRUE(cluster.SyncWrite(1, file, B("v2")).ok());

  // Within the TTL: stale, and no message is even sent.
  uint64_t served = cluster.server().stats().reads_served;
  Result<ReadResult> stale = cluster.SyncRead(0, file);
  EXPECT_EQ(T(stale->data), "v1");
  EXPECT_TRUE(stale->from_cache);
  EXPECT_EQ(cluster.server().stats().reads_served, served);
  EXPECT_GT(cluster.oracle().stale_reads(), 0u);

  // Past the TTL the client revalidates and refreshes.
  cluster.RunFor(Duration::Seconds(11));
  Result<ReadResult> fresh = cluster.SyncRead(0, file);
  EXPECT_EQ(T(fresh->data), "v2");
}

TEST(TtlBaselineTest, RevalidationUsesNotModifiedWhenCurrent) {
  BaselineOptions options;
  options.mode = BaselineMode::kStateless;
  options.ttl = Duration::Seconds(5);
  options.num_clients = 1;
  BaselineCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            B("v1"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());
  cluster.RunFor(Duration::Seconds(6));
  Result<ReadResult> again = cluster.SyncRead(0, file);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(T(again->data), "v1");
  EXPECT_EQ(cluster.client(0).stats().validations, 1u);
  // No data was refreshed: the version matched.
  EXPECT_EQ(cluster.client(0).stats().refreshed, 0u);
}

TEST(BaselineTest, WritesAreImmediateInBothModes) {
  for (BaselineMode mode :
       {BaselineMode::kCallbacks, BaselineMode::kStateless}) {
    BaselineOptions options;
    options.mode = mode;
    options.num_clients = 3;
    BaselineCluster cluster(options);
    FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                              B("v1"));
    ASSERT_TRUE(cluster.SyncRead(1, file).ok());
    ASSERT_TRUE(cluster.SyncRead(2, file).ok());
    TimePoint start = cluster.sim().Now();
    ASSERT_TRUE(cluster.SyncWrite(0, file, B("v2")).ok());
    // No approval protocol: a single request-response.
    EXPECT_LT(cluster.sim().Now() - start, Duration::Millis(20));
  }
}

TEST(BaselineTest, RetransmissionRecoversFromLoss) {
  BaselineOptions options;
  options.mode = BaselineMode::kCallbacks;
  options.num_clients = 1;
  options.net.loss_prob = 0.3;
  options.net.seed = 5;
  BaselineCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            B("v1"));
  Result<ReadResult> read = cluster.SyncRead(0, file, Duration::Seconds(60));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(T(read->data), "v1");
}

}  // namespace
}  // namespace leases
