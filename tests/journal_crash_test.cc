// The crash-point matrix: every enumerated CrashPoint is armed against the
// on-disk JournalBackend and the RecoveryOracle verifies the storage-level
// invariant after each injected crash -- no acknowledged write is lost, no
// phantom record is recovered. A second group layers the protocol on top:
// a SimCluster journaling to a real data_dir is power-cut and restarted,
// and the recovered max term must still delay post-restart writes.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "src/core/sim_cluster.h"
#include "src/fs/journal.h"
#include "src/fs/recovery_oracle.h"
#include "src/workload/v_config.h"

namespace leases {
namespace {

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_("leases_" + tag + "." + std::to_string(::getpid()) + ".tmp") {
    std::filesystem::remove_all(path_);
  }
  ~ScratchDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

const CrashPoint kAppendPoints[] = {
    CrashPoint::kBeforeAppend,
    CrashPoint::kPartialAppend,
    CrashPoint::kCorruptAppend,
    CrashPoint::kBeforeSync,
};

const CrashPoint kSnapshotPoints[] = {
    CrashPoint::kSnapshotBeforeRename,
    CrashPoint::kSnapshotAfterRename,
};

TEST(JournalCrashMatrixTest, AppendCrashesNeverLoseAcknowledgedWrites) {
  for (CrashPoint point : kAppendPoints) {
    SCOPED_TRACE(CrashPointName(point));
    ScratchDir dir("crash_append");
    JournalBackend journal(dir.path());
    ASSERT_TRUE(journal.Open().ok());
    RecoveryOracle oracle;

    // Some committed history the crash must not touch.
    for (int i = 0; i < 3; ++i) {
      MetaRecord record{"k" + std::to_string(i), i, false};
      ASSERT_TRUE(journal.Append(record).ok());
      oracle.OnAcked(record);
    }

    journal.ArmCrash(point);
    // The crashed append must fail -- the caller never acknowledges it, so
    // the oracle is NOT told about it.
    EXPECT_FALSE(journal.Append({"doomed", 99, false}).ok());
    EXPECT_TRUE(journal.dead());
    // Dead until recovery: later appends are refused too.
    EXPECT_FALSE(journal.Append({"also-doomed", 100, false}).ok());

    Status verdict = oracle.Check(journal);
    EXPECT_TRUE(verdict.ok()) << verdict.ToString();

    // Recovered: the backend accepts and acknowledges appends again, and a
    // second check still passes.
    MetaRecord after{"after", 7, false};
    ASSERT_TRUE(journal.Append(after).ok());
    oracle.OnAcked(after);
    verdict = oracle.Check(journal);
    EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  }
}

TEST(JournalCrashMatrixTest, SnapshotCrashesPreserveFullState) {
  for (CrashPoint point : kSnapshotPoints) {
    SCOPED_TRACE(CrashPointName(point));
    ScratchDir dir("crash_snapshot");
    JournalBackend journal(dir.path());
    ASSERT_TRUE(journal.Open().ok());
    RecoveryOracle oracle;

    for (int i = 0; i < 4; ++i) {
      MetaRecord record{"k" + std::to_string(i), i * 10, false};
      ASSERT_TRUE(journal.Append(record).ok());
      oracle.OnAcked(record);
    }

    journal.ArmCrash(point);
    std::vector<std::pair<std::string, int64_t>> state = {
        {"k0", 0}, {"k1", 10}, {"k2", 20}, {"k3", 30}};
    // The crashed compaction fails un-acknowledged; whether the rename
    // happened or not, replay must still see the exact pre-crash state
    // (before-rename: old snapshot + journal; after-rename: new snapshot
    // plus an un-truncated journal whose records are idempotent re-plays).
    EXPECT_FALSE(journal.Compact(state).ok());

    Status verdict = oracle.Check(journal);
    EXPECT_TRUE(verdict.ok()) << verdict.ToString();

    // And a retried compaction after recovery succeeds.
    ASSERT_TRUE(journal.Compact(state).ok());
    oracle.OnCompacted(state);
    verdict = oracle.Check(journal);
    EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  }
}

TEST(JournalCrashMatrixTest, RepeatedCrashesAcrossMixedWorkload) {
  // Walk every crash point over an interleaved append/compact workload,
  // checking the oracle after each recovery. The same backend object
  // survives all of it, like a server rebooting in place.
  ScratchDir dir("crash_mixed");
  JournalBackend journal(dir.path());
  ASSERT_TRUE(journal.Open().ok());
  RecoveryOracle oracle;

  int seq = 0;
  for (CrashPoint point : {CrashPoint::kPartialAppend,
                           CrashPoint::kSnapshotBeforeRename,
                           CrashPoint::kCorruptAppend,
                           CrashPoint::kSnapshotAfterRename,
                           CrashPoint::kBeforeSync,
                           CrashPoint::kBeforeAppend}) {
    SCOPED_TRACE(CrashPointName(point));
    for (int i = 0; i < 3; ++i) {
      MetaRecord record{"seq", ++seq, false};
      ASSERT_TRUE(journal.Append(record).ok());
      oracle.OnAcked(record);
    }
    journal.ArmCrash(point);
    bool snapshot_point = point == CrashPoint::kSnapshotBeforeRename ||
                          point == CrashPoint::kSnapshotAfterRename;
    if (snapshot_point) {
      EXPECT_FALSE(journal.Compact({{"seq", seq}}).ok());
    } else {
      EXPECT_FALSE(journal.Append({"seq", 999, false}).ok());
    }
    Status verdict = oracle.Check(journal);
    ASSERT_TRUE(verdict.ok()) << verdict.ToString();
  }
  EXPECT_EQ(oracle.acked().at("seq"), seq);
}

// --- Protocol layer: the journal behind a simulated cluster ---

TEST(ClusterJournalTest, PowerCutRecoveryDelaysWritesForGrantedTerm) {
  ScratchDir dir("cluster_cut");
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 2);
  options.data_dir = dir.path();
  SimCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("v1"));
  ASSERT_TRUE(cluster.SyncRead(0, file).ok());

  cluster.CrashServer(TailDamage::kTorn);
  cluster.RunFor(Duration::Seconds(1));
  cluster.RestartServer();

  // The journal survived the torn tail: the recovered max term covers the
  // pre-crash grant, so the restarted server is in recovery for a full term.
  EXPECT_TRUE(cluster.server().InRecovery());
  ServerStats stats = cluster.server().stats();
  EXPECT_EQ(stats.recovery_window, Duration::Seconds(10));
  EXPECT_EQ(stats.journal_truncated_tails, 1u);
  EXPECT_GE(stats.journal_replays, 1u);

  TimePoint start = cluster.sim().Now();
  ASSERT_TRUE(
      cluster.SyncWrite(1, file, Bytes("v2"), Duration::Seconds(30)).ok());
  Duration waited = cluster.sim().Now() - start;
  EXPECT_GT(waited, Duration::Seconds(8));
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(ClusterJournalTest, GrantRefusedWhenAppendNotDurable) {
  // Durability precedes visibility at the protocol layer too: if the
  // max-term append fails (disk full, fsync error -- modeled by an armed
  // crash), the lease must NOT be acknowledged. The read is still served,
  // but with a zero-term grant, and no recovery coverage is claimed that
  // the journal cannot deliver.
  ScratchDir dir("cluster_refused");
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(10), 2);
  options.data_dir = dir.path();
  SimCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("v1"));
  auto& journal = static_cast<JournalBackend&>(cluster.storage());
  journal.ArmCrash(CrashPoint::kBeforeSync);

  ASSERT_TRUE(cluster.SyncRead(0, file).ok());  // served, just not cached
  ServerStats stats = cluster.server().stats();
  EXPECT_EQ(stats.durability_refused_grants, 1u);
  EXPECT_GE(stats.zero_term_grants, 1u);
  EXPECT_EQ(stats.leases_granted, 0u);
  EXPECT_EQ(cluster.server().ActiveLeaseCount(cluster.store().CoverOf(file)),
            0u);
  // The un-durable maximum was never made visible either.
  EXPECT_FALSE(cluster.meta().Load("max_term_us").has_value());
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

TEST(LeaseServerBootTest, HaltsWhenBootCounterNotDurable) {
  // Without a durable boot counter the next incarnation would reuse this
  // one's write-seq range (stale pre-crash approvals could count for new
  // writes), so a server that cannot persist it must refuse to serve.
  MemoryBackend backend;
  DurableMeta meta(&backend);
  backend.PowerCut(TailDamage::kClean);  // dead: every append fails
  Simulator sim;
  SimNetwork network(&sim, NetworkParams{});
  SimClock clock(&sim, ClockModel::Perfect());
  SimTimerHost timers(&sim, &clock);
  SimTransport* transport = network.AttachNode(NodeId(1), nullptr);
  FileStore store;
  FixedTermPolicy policy(Duration::Seconds(10));
  LeaseServer server(NodeId(1), &store, &meta, transport, &clock, &timers,
                     &policy, ServerParams{}, /*oracle=*/nullptr);
  EXPECT_TRUE(server.halted());
  EXPECT_FALSE(meta.Load("boot_count").has_value());
}

TEST(ClusterJournalTest, BootCounterAdvancesAcrossPowerCuts) {
  ScratchDir dir("cluster_boots");
  ClusterOptions options = MakeVClusterOptions(Duration::Seconds(2), 1);
  options.data_dir = dir.path();
  SimCluster cluster(options);
  FileId file = *cluster.store().CreatePath("/f", FileClass::kNormal,
                                            Bytes("v1"));
  for (TailDamage damage :
       {TailDamage::kClean, TailDamage::kCorrupt, TailDamage::kTorn}) {
    ASSERT_TRUE(cluster.SyncRead(0, file).ok());
    cluster.CrashServer(damage);
    cluster.RunFor(Duration::Seconds(3));  // leases lapse
    cluster.RestartServer();
  }
  // Boot 1 plus three restarts; each recovery incremented the counter.
  EXPECT_EQ(cluster.meta().Load("boot_count").value_or(0), 4);
  EXPECT_EQ(cluster.server().stats().recoveries, 1u);
  ASSERT_TRUE(cluster.SyncWrite(0, file, Bytes("v2")).ok());
  EXPECT_EQ(cluster.oracle().violations(), 0u);
}

}  // namespace
}  // namespace leases
